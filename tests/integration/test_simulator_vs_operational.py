"""Simulator outcomes ⊆ operational x86-TSO outcomes.

For straight-line litmus shapes we can express in both worlds, every
register valuation the cycle-level simulator produces (any commit mode,
any timing offset) must be reachable in the operational reference
machine.  This ties the microarchitectural model to the architectural
specification end to end.
"""

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.consistency.operational import ld as o_ld
from repro.consistency.operational import outcome_reachable, rmw as o_rmw
from repro.consistency.operational import st as o_st
from repro.sim.system import MulticoreSystem
from repro.workloads.trace import AddressSpace, TraceBuilder

# Each shape: list of threads; thread = list of ("ld", loc, name) /
# ("st", loc, value) / ("at", loc, name) abstract operations.
SHAPES = {
    "sb": [
        [("st", "x", 1), ("ld", "y", "r0")],
        [("st", "y", 1), ("ld", "x", "r1")],
    ],
    "mp": [
        [("st", "d", 42), ("st", "f", 1)],
        [("ld", "f", "rf"), ("ld", "d", "rd")],
    ],
    "table1": [
        [("ld", "y", "ra"), ("ld", "x", "rb")],
        [("st", "x", 1), ("st", "y", 1)],
    ],
    "lb": [
        [("ld", "x", "r0"), ("st", "y", 1)],
        [("ld", "y", "r1"), ("st", "x", 1)],
    ],
    "n6": [
        [("st", "x", 1), ("ld", "x", "r0"), ("ld", "y", "r1")],
        [("st", "y", 1), ("ld", "y", "r2"), ("ld", "x", "r3")],
    ],
    "rmw-pair": [
        [("at", "c", "r0")],
        [("at", "c", "r1")],
    ],
}

MODES = [CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB]
DELAYS = [(0, 0), (0, 50), (50, 0), (25, 75)]


def to_operational(shape):
    threads = []
    for ops in shape:
        thread = []
        for op in ops:
            if op[0] == "ld":
                thread.append(o_ld(op[1], op[2]))
            elif op[0] == "st":
                thread.append(o_st(op[1], op[2]))
            else:
                thread.append(o_rmw(op[1], op[2], 1))
        threads.append(thread)
    return threads


def run_on_simulator(shape, mode, delays):
    space = AddressSpace()
    addr = {}
    out_regs = []
    traces = []
    for tid, ops in enumerate(shape):
        t = TraceBuilder()
        if tid < len(delays) and delays[tid]:
            t.compute(latency=delays[tid])
        for op in ops:
            loc = op[1]
            if loc not in addr:
                addr[loc] = space.new_var(loc)
            if op[0] == "ld":
                reg = t.reg()
                t.load(reg, addr[loc])
                out_regs.append((tid, reg, f"t{tid}:{op[2]}"))
            elif op[0] == "st":
                t.store(addr[loc], op[2])
            else:
                reg = t.reg()
                t.faa(reg, addr[loc], 1)
                out_regs.append((tid, reg, f"t{tid}:{op[2]}"))
        traces.append(t.build())
    params = table6_system("SLM", num_cores=4, commit_mode=mode)
    system = MulticoreSystem(params)
    system.load_program(traces)
    system.run()
    return {name: system.cores[tid].reg_values.get(reg, 0)
            for tid, reg, name in out_regs}


@pytest.mark.parametrize("name", sorted(SHAPES))
@pytest.mark.parametrize("mode", MODES)
def test_simulator_outcomes_operationally_reachable(name, mode):
    shape = SHAPES[name]
    reference = to_operational(shape)
    for delays in DELAYS:
        observed = run_on_simulator(shape, mode, delays)
        assert outcome_reachable(reference, observed), (
            f"{name} under {mode.value} with delays {delays} produced "
            f"{observed}, which x86-TSO cannot reach")


def test_unsafe_mode_produces_unreachable_outcome():
    """And the ablation produces outcomes the reference machine CANNOT
    reach — closing the loop on both directions."""
    shape = [
        [("ld", "x", "warm"), ("ld", "y", "ra"), ("ld", "x", "rb")],
        [("st", "x", 1), ("st", "y", 1)],
    ]
    reference = to_operational(shape)
    # Build the adversarial timing directly (unresolved address on ld y).
    space = AddressSpace()
    x = space.new_var("x")
    y = space.new_var("y")
    t0 = TraceBuilder()
    warm = t0.reg()
    t0.load(warm, x)
    gate = t0.reg()
    t0.gate(gate, srcs=(warm,), latency=400)
    ra = t0.reg()
    t0.load(ra, y, addr_reg=gate)
    rb = t0.reg()
    t0.load(rb, x)
    t1 = TraceBuilder()
    t1.compute(latency=40)
    t1.store(x, 1)
    t1.store(y, 1)
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_UNSAFE)
    system = MulticoreSystem(params)
    system.load_program([t0.build(), t1.build()])
    system.run()
    regs = system.cores[0].reg_values
    observed = {"t0:warm": regs[warm], "t0:ra": regs[ra], "t0:rb": regs[rb]}
    assert observed["t0:ra"] == 1 and observed["t0:rb"] == 0
    assert not outcome_reachable(reference, observed)
