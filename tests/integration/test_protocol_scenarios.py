"""Paper Figures 1-3 as end-to-end scenarios on real cores.

The running example: core 0 executes ``ld ra,y ; ld rb,x`` where the
older load's address resolves late and the younger hits a cached copy;
core 1 executes ``st x,1 ; st y,1``.  TSO forbids {ra==new, rb==old}.
"""

import dataclasses

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.consistency.tso_checker import check_tso
from repro.common.errors import TSOViolationError
from repro.sim.system import MulticoreSystem
from repro.workloads.trace import AddressSpace, TraceBuilder


def racing_program(resolve_delay, writer_delay):
    space = AddressSpace()
    x = space.new_var("x")
    y = space.new_var("y")
    t0 = TraceBuilder()
    warm = t0.reg()
    t0.load(warm, x)  # cache x (the "old" copy)
    gate = t0.reg()
    t0.gate(gate, srcs=(warm,), latency=resolve_delay)
    ra = t0.reg()
    t0.load(ra, y, addr_reg=gate)  # older load, unresolved address
    rb = t0.reg()
    t0.load(rb, x)  # younger load: hits, M-speculative
    t1 = TraceBuilder()
    t1.compute(latency=writer_delay)
    t1.store(x, 1)
    t1.store(y, 1)
    return [t0.build(), t1.build()], (x, y)


DELAYS = [(d0, d1) for d0 in (120, 200, 300) for d1 in (30, 60, 100)]


def run_mode(mode, resolve_delay, writer_delay):
    traces, __ = racing_program(resolve_delay, writer_delay)
    params = table6_system("SLM", num_cores=4, commit_mode=mode)
    system = MulticoreSystem(params)
    system.load_program(traces)
    result = system.run()
    regs = system.cores[0].reg_values
    return system, result, regs


def outcome(system, result):
    """(ra, rb) as old/new value observations."""
    ld_events = [e for e in result.log.events
                 if e.core == 0 and e.kind == "ld"]
    by_addr = {}
    for event in ld_events:
        by_addr.setdefault(event.addr, []).append(event)
    return ld_events


@pytest.mark.parametrize("mode", [CommitMode.IN_ORDER, CommitMode.OOO,
                                  CommitMode.OOO_WB])
def test_racing_loads_never_violate_tso(mode):
    for resolve_delay, writer_delay in DELAYS:
        system, result, regs = run_mode(mode, resolve_delay, writer_delay)
        check_tso(result.log)  # raises on violation


def test_unsafe_mode_produces_the_forbidden_outcome():
    """The ablation proves the race is real: without any protection some
    timing yields {ra==new, rb==old}, caught by the checker."""
    caught = False
    for resolve_delay, writer_delay in DELAYS:
        traces, __ = racing_program(resolve_delay, writer_delay)
        params = table6_system("SLM", num_cores=4,
                               commit_mode=CommitMode.OOO_UNSAFE)
        system = MulticoreSystem(params)
        system.load_program(traces)
        result = system.run()
        try:
            check_tso(result.log)
        except TSOViolationError:
            caught = True
            break
    assert caught, "expected at least one timing to violate TSO"


def test_wb_blocks_the_store_instead_of_squashing():
    """Figure 1.B: under WritersBlock the invalidation is Nacked and the
    store waits; no consistency squash happens and ld y reads old y."""
    found = False
    for resolve_delay, writer_delay in DELAYS:
        system, result, regs = run_mode(CommitMode.OOO_WB, resolve_delay,
                                        writer_delay)
        assert result.counter("core.consistency_squashes") == 0
        if result.counter("dir.writersblock_entered") >= 1:
            found = True
            # The old value was read by BOTH loads: the lockdown delayed
            # st x, and therefore (transitively) st y.
            loads = [e for e in result.log.events
                     if e.core == 0 and e.kind == "ld"]
            assert all(e.version_read == 0 for e in loads)
    assert found, "no timing produced a blocked write"


def test_baseline_squashes_instead():
    """Figure 2.A: the squash-and-re-execute baseline pays a squash for
    the same race (in at least one timing) and stays TSO-correct."""
    squashes = 0
    for resolve_delay, writer_delay in DELAYS:
        system, result, regs = run_mode(CommitMode.OOO, resolve_delay,
                                        writer_delay)
        squashes += result.counter("core.consistency_squashes")
        assert result.counter("dir.writersblock_entered") == 0
    assert squashes >= 1


def test_three_core_transitive_delay():
    """Paper Table 3: st x and st y on different cores, ordered by a
    spin on x.  Delaying st x transitively delays st y; ld y must read
    the old value whenever the reordering was hidden."""
    space = AddressSpace()
    x = space.new_var("x")
    y = space.new_var("y")
    t0 = TraceBuilder()
    warm = t0.reg()
    t0.load(warm, x)
    gate = t0.reg()
    t0.gate(gate, srcs=(warm,), latency=250)
    ra = t0.reg()
    t0.load(ra, y, addr_reg=gate)
    rb = t0.reg()
    t0.load(rb, x)
    t1 = TraceBuilder()
    t1.compute(latency=60)
    t1.store(x, 1)
    t2 = TraceBuilder()
    rc = t2.reg()
    spin = t2.here
    t2.load(rc, x)
    t2.beqz(rc, spin, predict_taken=True)
    t2.store(y, 1)
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    system = MulticoreSystem(params)
    system.load_program([t0.build(), t1.build(), t2.build()])
    result = system.run()
    check_tso(result.log)
    assert result.counter("core.consistency_squashes") == 0
