"""End-to-end smoke over the benchmark suite (small scale).

Every workload must complete under OoO+WritersBlock with a TSO-clean
execution and zero consistency squashes; runs must be bit-reproducible;
and the squash-mode baseline must produce the same lock-protected
results.
"""

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.sim.runner import run_workload
from repro.workloads import ALL_WORKLOADS

SMOKE_SET = ("fft", "radix", "streamcluster", "freqmine", "x264", "canneal")


@pytest.mark.parametrize("name", SMOKE_SET)
def test_workload_completes_tso_clean_under_wb(name):
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    workload = ALL_WORKLOADS[name](num_threads=4, scale=0.25)
    result = run_workload(workload, params)  # checks TSO internally
    assert result.consistency_squashes == 0
    assert result.committed > 0
    assert result.cycles > 0


@pytest.mark.parametrize("name", ("fft", "streamcluster"))
def test_runs_are_reproducible(name):
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    results = [
        run_workload(ALL_WORKLOADS[name](num_threads=4, scale=0.25), params)
        for __ in range(2)
    ]
    assert results[0].cycles == results[1].cycles
    assert results[0].stats == results[1].stats


def test_wb_never_slower_than_inorder_by_much():
    """Sanity bound: the WB mode may trade squashes for store delays but
    must stay within a tight envelope of the in-order baseline."""
    for name in ("fft", "freqmine"):
        workload_factory = ALL_WORKLOADS[name]
        base = run_workload(
            workload_factory(num_threads=4, scale=0.25),
            table6_system("SLM", num_cores=4,
                          commit_mode=CommitMode.IN_ORDER))
        wb = run_workload(
            workload_factory(num_threads=4, scale=0.25),
            table6_system("SLM", num_cores=4,
                          commit_mode=CommitMode.OOO_WB))
        assert wb.cycles < base.cycles * 1.10


def test_nhm_class_runs_clean():
    params = table6_system("NHM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    result = run_workload(
        ALL_WORKLOADS["bodytrack"](num_threads=4, scale=0.25), params)
    assert result.consistency_squashes == 0


def test_hsw_class_runs_clean():
    params = table6_system("HSW", num_cores=4, commit_mode=CommitMode.OOO_WB)
    result = run_workload(
        ALL_WORKLOADS["streamcluster"](num_threads=4, scale=0.25), params)
    assert result.consistency_squashes == 0
