"""Paper Figure 5: the two deadlock scenarios and their safe passages.

Scenario B (MSHR deadlock): core k's SoS load resolves into the same
cache line as one of its own writes that is blocked in WritersBlock; if
the load stays piggybacked on that write's MSHR the system deadlocks.
The §3.5.2 rule (launch an uncacheable read on a fresh MSHR) breaks the
cycle.  We run the identical program with the rule enabled and disabled
(ablation flag): enabled completes, disabled trips the watchdog.

Scenario A (directory deadlock) cannot arise by construction in this
implementation — reads never wait on an evicting WritersBlock entry,
they fall back to uncacheable service (see
tests/coherence/test_directory_eviction.py) — so here we only check the
combined end-to-end behaviour under tiny LLCs.
"""

import dataclasses

import pytest

from repro.common.errors import DeadlockError
from repro.common.params import CacheParams, table6_system
from repro.common.types import CommitMode
from repro.sim.system import MulticoreSystem
from repro.workloads.trace import AddressSpace, TraceBuilder


def mshr_deadlock_program():
    """Builds the Figure 5.B shape.

    Core 0: warms line ``a``, then
      - an SoS load whose address resolves late to ``a2`` (same line a),
      - a younger load of ``a1`` that hits and goes into lockdown,
      - a store to ``a3`` (same line) that prefetches write permission.
    Core 1: stores to ``a1`` after a delay — its invalidation hits core
    0's lockdown, entering WritersBlock; core 0's own prefetched write
    queues behind it.  Core 0's SoS load then piggybacks on that blocked
    write: without the bypass rule nothing can ever perform.
    """
    space = AddressSpace()
    a1 = space.new_var("a")  # line base
    a2 = a1 + 8
    a3 = a1 + 16
    t0 = TraceBuilder()
    warm = t0.reg()
    t0.load(warm, a1)  # bring line a into the cache
    gate = t0.reg()
    t0.gate(gate, srcs=(warm,), latency=250)  # slow address for the SoS
    sos = t0.reg()
    t0.load(sos, a2, addr_reg=gate)  # resolves to a2 late
    spec = t0.reg()
    t0.load(spec, a1)  # hits early: M-speculative, lockdown on line a
    slow_val = t0.reg()
    t0.gate(slow_val, srcs=(warm,), latency=150, imm=7)
    # The store executes (and prefetches write permission) only after
    # core 1's write has already been Nacked into WritersBlock, so the
    # prefetch queues behind it — the Figure 5.B ordering.
    t0.store(a3, value_reg=slow_val)

    t1 = TraceBuilder()
    t1.compute(latency=60)
    t1.store(a1, 1)  # invalidation hits core 0's lockdown
    return [t0.build(), t1.build()]


def run(traces, *, disable_bypass, watchdog=30_000):
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    params = dataclasses.replace(params, disable_sos_bypass=disable_bypass,
                                 watchdog_cycles=watchdog)
    system = MulticoreSystem(params)
    system.load_program(traces)
    return system, system.run()


def test_sos_bypass_prevents_mshr_deadlock():
    system, result = run(mshr_deadlock_program(), disable_bypass=False)
    # The SoS load bypassed the blocked write with an uncacheable read.
    assert result.counter("dir.uncacheable_reads") >= 1
    assert result.counter("dir.writersblock_entered") >= 1
    assert result.counter("core.consistency_squashes") == 0


def test_without_sos_bypass_the_system_deadlocks():
    with pytest.raises(DeadlockError) as exc:
        run(mshr_deadlock_program(), disable_bypass=True)
    # The diagnostic names the stuck core.
    assert "core0" in str(exc.value)


def test_sos_value_respects_tso_in_the_deadlock_shape():
    """The bypassed SoS load must read the OLD value of a2 (the blocked
    writer cannot have performed yet)."""
    system, result = run(mshr_deadlock_program(), disable_bypass=False)
    events = [e for e in result.log.events if e.core == 0 and e.kind == "ld"]
    # All of core 0's loads on line a read pre-write data (version 0),
    # except none can see core 1's store before the lockdown lifted.
    sos_event = next(e for e in events if e.addr % 64 == 8)
    assert sos_event.version_read == 0


def test_tiny_llc_full_system_has_no_deadlock():
    """End-to-end safety with constant directory evictions."""
    cache = CacheParams(llc_sets_per_bank=1, llc_ways=2, dir_eviction_buffer=2)
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    params = dataclasses.replace(params, cache=cache, watchdog_cycles=100_000)
    space = AddressSpace()
    arrays = space.new_array("data", 24)
    traces = []
    for tid in range(4):
        t = TraceBuilder()
        for i in range(40):
            addr = arrays[(tid * 7 + i * 3) % len(arrays)]
            if i % 3 == 0:
                t.store(addr, i)
            else:
                t.load(t.reg(), addr)
            t.compute(latency=2)
        traces.append(t.build())
    system = MulticoreSystem(params)
    system.load_program(traces)
    result = system.run()  # must terminate
    assert result.committed > 0
