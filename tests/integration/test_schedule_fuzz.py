"""Schedule fuzzing: perturb message timing, check protocol invariants.

The mesh is replaced by a jittered variant that adds a random (seeded)
delay to every message — the network stays unordered but explores far
more interleavings than the deterministic latency model.  After each
run we check TSO *and* the structural coherence invariants.  This is
the closest thing to model-checking the real protocol implementation.
"""

import dataclasses
import random

import pytest

from repro.coherence.invariants import check_quiescent
from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.consistency.tso_checker import check_tso
from repro.network.mesh import MeshNetwork
from repro.sim.system import MulticoreSystem
from repro.workloads.trace import AddressSpace, TraceBuilder


class JitterMesh(MeshNetwork):
    """Adds 0..jitter cycles of random extra latency per message.

    Same-(src, dst) FIFO order is preserved — deterministic X-Y routing
    guarantees it on the real mesh and the protocol may rely on it (e.g.
    a Nack must reach the directory before the later DeferredAck from
    the same cache).  Cross-pair orderings are fully scrambled, which is
    the unordered-network property under test.
    """

    def __init__(self, *args, seed=0, jitter=40, **kwargs):
        super().__init__(*args, **kwargs)
        self._rng = random.Random(seed)
        self._jitter = jitter
        self._last_arrival = {}

    def _arrival_cycle(self, msg):
        arrival = (super()._arrival_cycle(msg)
                   + self._rng.randrange(self._jitter + 1))
        key = (msg.src, msg.dst, msg.dst_port)
        arrival = max(arrival, self._last_arrival.get(key, 0) + 1)
        self._last_arrival[key] = arrival
        return arrival


def jittered_system(params, seed):
    system = MulticoreSystem(params)
    # Swap in the jittered mesh and re-register all endpoints.
    jmesh = JitterMesh(params.num_cores, params.network, system.events,
                       system.stats, seed=seed, jitter=40)
    jmesh._endpoints = system.network._endpoints
    system.network = jmesh
    for cache in system.caches:
        cache.network = jmesh
    for bank in system.directories:
        bank.network = jmesh
    return system


def contended_program(seed):
    rng = random.Random(seed)
    space = AddressSpace()
    hot = [space.new_var("h0"), space.new_var("h1")]
    hot.append(hot[0] + 8)  # false sharing with h0
    counter = space.new_var("counter")
    traces = []
    for tid in range(4):
        t = TraceBuilder()
        for i in range(14):
            pick = rng.random()
            addr = hot[rng.randrange(len(hot))]
            if pick < 0.4:
                t.load(t.reg(), addr)
            elif pick < 0.7:
                t.store(addr, rng.randrange(1, 50))
            elif pick < 0.8:
                t.faa(t.reg(), counter, 1)
            elif pick < 0.9:
                gate = t.reg()
                t.gate(gate, srcs=(), latency=rng.randrange(5, 60))
                t.load(t.reg(), addr, addr_reg=gate)
            else:
                t.compute(latency=rng.randrange(1, 6))
        traces.append(t.build())
    return traces


@pytest.mark.parametrize("mode", [CommitMode.IN_ORDER, CommitMode.OOO,
                                  CommitMode.OOO_WB])
@pytest.mark.parametrize("seed", range(6))
def test_jittered_schedules_stay_coherent(mode, seed):
    params = table6_system("SLM", num_cores=4, commit_mode=mode)
    system = jittered_system(params, seed)
    system.load_program(contended_program(seed * 17 + 3))
    result = system.run()
    check_tso(result.log)
    check_quiescent(system)


@pytest.mark.parametrize("seed", range(4))
def test_jittered_ecl_cores_stay_coherent(seed):
    params = table6_system("SLM", num_cores=4)
    params = dataclasses.replace(params, core_type="inorder-ecl",
                                 writers_block=True)
    system = jittered_system(params, seed)
    system.load_program(contended_program(seed * 31 + 7))
    result = system.run()
    check_tso(result.log)
    check_quiescent(system)
