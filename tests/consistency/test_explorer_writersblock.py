"""Exploration of the two WritersBlock corner paths the paper leans on.

Both scenarios drive the *production* protocol objects through every
network delivery order (see :mod:`repro.verification.explorer`):

* a deferred Ack must route through the directory's WritersBlock entry
  after the lockdown lifts — in every interleaving the block dissolves,
  the waiting write is granted, and nothing is left in flight;
* an SoS load whose own write to the line is blocked must bypass the
  blocked-write MSHR with a fresh uncacheable read and get its value
  *while the block still holds*.
"""

from repro.common.types import DirState, LineAddr
from repro.verification import combined_invariant, explore, no_residue

LINE = LineAddr(0x40)
ADDR = 0x1000


def _home_entry(system, line=LINE):
    bank = system.dirs[int(line) % len(system.dirs)]
    return bank.entry(line)


def test_deferred_ack_routes_through_writersblock_entry():
    """Reader locks the line down; a writer blocks; a third core's read
    tears off uncacheable data mid-block; the lockdown lift's deferred
    Ack must reach the WritersBlock entry and release the writer — in
    every delivery order."""

    def setup(system):
        system.cores[0].issue_load(ADDR)

    def on_quiescent(system):
        core0, core1, core2 = system.cores[0], system.cores[1], system.cores[2]
        scratch = system.scratch
        if not scratch.get("locked") and core0.load_results:
            scratch["locked"] = True
            core0.lockdowns.add(LINE)
            return
        if scratch.get("locked") and not scratch.get("write"):
            scratch["write"] = True
            core1.request_write(LINE)
            return
        # The Nack has landed (quiescent + nacked set), so the entry is
        # in WritersBlock: a read now must be served by tear-off.
        if LINE in core0.nacked and not scratch.get("tearoff"):
            scratch["tearoff"] = True
            core2.issue_load(ADDR)
            return
        # Only lift the lockdown after the tear-off read completed, so
        # the deferred Ack demonstrably traverses a live block.
        if scratch.get("tearoff") and core2.load_results \
                and LINE in core0.lockdowns:
            core0.release_lockdown(LINE)

    def invariant(system):
        problem = combined_invariant(system)
        if problem:
            return problem
        if LINE in system.cores[0].lockdowns \
                and system.cores[1].writes_granted:
            return "write granted while the lockdown still held"
        return None

    def final_check(system):
        residue = no_residue(system)
        if residue:
            return residue
        if not system.cores[1].writes_granted:
            return "blocked write never granted after the deferred ack"
        core2 = system.cores[2]
        if not core2.load_results:
            return "tear-off read never completed"
        uncacheable = [unc for __, __, unc in core2.load_results]
        if True not in uncacheable:
            return ("mid-block read was not served uncacheably: "
                    f"{core2.load_results}")
        entry = _home_entry(system)
        if entry is not None and entry.state is DirState.WRITERS_BLOCK:
            return "WritersBlock entry never dissolved"
        return None

    result = explore(setup, invariant, final_check,
                     on_quiescent=on_quiescent)
    assert result.ok, result.violations
    assert result.paths_completed >= 1


def test_sos_load_bypasses_blocked_write_mshr():
    """The writer core itself has an SoS load to the blocked line: it
    must launch a fresh uncacheable read past its own blocked-write
    MSHR and perform while the write is still waiting."""

    def setup(system):
        system.cores[0].issue_load(ADDR)

    def on_quiescent(system):
        core0, core1 = system.cores[0], system.cores[1]
        scratch = system.scratch
        if not scratch.get("locked") and core0.load_results:
            scratch["locked"] = True
            core0.lockdowns.add(LINE)
            return
        if scratch.get("locked") and not scratch.get("write"):
            scratch["write"] = True
            core1.request_write(LINE)
            return
        # The BLOCKED_HINT arrived: core1's write MSHR is marked
        # blocked, which is exactly when a real core launches the SoS
        # bypass instead of piggybacking on the write.
        if not scratch.get("bypass") and core1.cache.write_blocked(LINE):
            scratch["bypass"] = True
            core1.issue_sos_load(ADDR)
            return
        # Lift the lockdown only after the bypass read performed, so
        # its completion provably did not wait for the block.
        if scratch.get("bypass") and core1.load_results \
                and LINE in core0.lockdowns:
            core0.release_lockdown(LINE)

    def invariant(system):
        problem = combined_invariant(system)
        if problem:
            return problem
        core0, core1 = system.cores[0], system.cores[1]
        if LINE in core0.lockdowns and core1.writes_granted:
            return "write granted while the lockdown still held"
        # A completed bypass read while the block holds must be the
        # uncacheable tear-off, never a cacheable fill.
        if LINE in core0.lockdowns:
            for __, __, uncacheable in core1.load_results:
                if not uncacheable:
                    return ("SoS bypass load filled cacheably while "
                            "the write was blocked")
        return None

    def final_check(system):
        residue = no_residue(system)
        if residue:
            return residue
        core1 = system.cores[1]
        if not core1.load_results:
            return "SoS bypass load never completed"
        if True not in [unc for __, __, unc in core1.load_results]:
            return f"bypass was not uncacheable: {core1.load_results}"
        if not core1.writes_granted:
            return "blocked write never granted"
        return None

    result = explore(setup, invariant, final_check,
                     on_quiescent=on_quiescent)
    assert result.ok, result.violations
    assert result.paths_completed >= 1
