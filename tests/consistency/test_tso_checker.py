"""Axiomatic TSO checker: hand-built executions, legal and illegal."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import TSOViolationError
from repro.consistency.execution import ExecutionLog
from repro.consistency.tso_checker import check_tso


def fresh_log():
    return ExecutionLog()


def add_store(log, core, seq, addr, value=1):
    version = log.new_version(core, seq, addr, value)
    log.store_performed(version)
    log.record_store(core, seq, addr, version, cycle=0)
    return version


def test_empty_execution_passes():
    check_tso(fresh_log())


def test_simple_message_passing_passes():
    log = fresh_log()
    vd = add_store(log, core=1, seq=0, addr=0x10)  # data
    vf = add_store(log, core=1, seq=1, addr=0x20)  # flag
    log.record_load(0, 0, 0x20, vf, cycle=1)  # saw flag
    log.record_load(0, 1, 0x10, vd, cycle=2)  # saw data
    check_tso(log)


def test_message_passing_violation_detected():
    # Reader sees the flag but stale data: forbidden (fr ; rfe cycle).
    log = fresh_log()
    vd = add_store(log, core=1, seq=0, addr=0x10)
    vf = add_store(log, core=1, seq=1, addr=0x20)
    log.record_load(0, 0, 0x20, vf, cycle=1)
    log.record_load(0, 1, 0x10, 0, cycle=2)  # initial value: stale!
    with pytest.raises(TSOViolationError):
        check_tso(log)


def test_store_buffering_outcome_is_legal():
    # SB litmus: both loads reading 0 is allowed in TSO (W->R relaxed).
    log = fresh_log()
    add_store(log, core=0, seq=0, addr=0x10)
    log.record_load(0, 1, 0x20, 0, cycle=1)
    add_store(log, core=1, seq=0, addr=0x20)
    log.record_load(1, 1, 0x10, 0, cycle=1)
    check_tso(log)


def test_load_load_reordering_violation():
    # The paper's Table 1 illegal outcome: ld y new, ld x old.
    log = fresh_log()
    vx = add_store(log, core=1, seq=0, addr=0x10)
    vy = add_store(log, core=1, seq=1, addr=0x20)
    log.record_load(0, 0, 0x20, vy, cycle=1)  # ld y -> new
    log.record_load(0, 1, 0x10, 0, cycle=2)  # ld x -> old: forbidden
    with pytest.raises(TSOViolationError):
        check_tso(log)


def test_iriw_violation_detected():
    log = fresh_log()
    vx = add_store(log, core=0, seq=0, addr=0x10)
    vy = add_store(log, core=1, seq=0, addr=0x20)
    log.record_load(2, 0, 0x10, vx, cycle=1)
    log.record_load(2, 1, 0x20, 0, cycle=2)
    log.record_load(3, 0, 0x20, vy, cycle=1)
    log.record_load(3, 1, 0x10, 0, cycle=2)
    with pytest.raises(TSOViolationError):
        check_tso(log)


def test_coherence_read_read_violation():
    # Same location: reads must not observe co backwards.
    log = fresh_log()
    v1 = add_store(log, core=1, seq=0, addr=0x10)
    log.record_load(0, 0, 0x10, v1, cycle=1)
    log.record_load(0, 1, 0x10, 0, cycle=2)  # older value after newer
    with pytest.raises(TSOViolationError):
        check_tso(log)


def test_forwarded_read_own_store_early_is_legal():
    # rfi: a load may read its own core's store before it performs.
    log = fresh_log()
    # Core 0: st x; ld x (forwarded); ld y (old). Core 1: st y; ld x old.
    vx = log.new_version(0, 0, 0x10, 1)
    log.record_store(0, 0, 0x10, vx, cycle=5)
    log.store_performed(vx)
    log.record_load(0, 1, 0x10, vx, cycle=1, forwarded=True)
    log.record_load(0, 2, 0x20, 0, cycle=2)
    vy = add_store(log, core=1, seq=0, addr=0x20)
    log.record_load(1, 1, 0x10, 0, cycle=2)
    check_tso(log)


def test_atomicity_violation_detected():
    # Two RMWs reading the same old version.
    log = fresh_log()
    v1 = log.new_version(0, 0, 0x10, 1)
    log.store_performed(v1)
    log.record_atomic(0, 0, 0x10, 0, v1, cycle=1)
    v2 = log.new_version(1, 0, 0x10, 2)
    log.store_performed(v2)
    log.record_atomic(1, 0, 0x10, 0, v2, cycle=2)  # also read 0: broken
    with pytest.raises(TSOViolationError):
        check_tso(log)


def test_atomics_act_as_fences():
    # W -> RMW -> R is ordered: SB-style outcome through atomics is
    # forbidden.
    log = fresh_log()
    # Core 0: st x=1 ; rmw z ; ld y == 0
    vx = add_store(log, core=0, seq=0, addr=0x10)
    a0 = log.new_version(0, 1, 0x30, 1)
    log.store_performed(a0)
    log.record_atomic(0, 1, 0x30, 0, a0, cycle=1)
    log.record_load(0, 2, 0x20, 0, cycle=2)
    # Core 1: st y=1 ; rmw w ; ld x == 0
    vy = add_store(log, core=1, seq=0, addr=0x20)
    a1 = log.new_version(1, 1, 0x40, 1)
    log.store_performed(a1)
    log.record_atomic(1, 1, 0x40, 0, a1, cycle=1)
    log.record_load(1, 2, 0x10, 0, cycle=2)
    with pytest.raises(TSOViolationError):
        check_tso(log)


def test_sc_executions_always_pass_checker():
    """Property: any sequentially consistent interleaving is TSO-legal."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 2),  # core
                  st.sampled_from(["ld", "st"]),
                  st.integers(0, 3)),  # address index
        min_size=1, max_size=24))
    def run(ops):
        log = fresh_log()
        seqs = {0: 0, 1: 0, 2: 0}
        current = {}  # addr -> latest version (SC memory)
        for core, kind, addr_idx in ops:
            addr = 0x100 + addr_idx * 0x40
            seq = seqs[core]
            seqs[core] += 1
            if kind == "st":
                current[addr] = add_store(log, core, seq, addr)
            else:
                log.record_load(core, seq, addr, current.get(addr, 0),
                                cycle=seq)
        check_tso(log)

    run()
