"""Frozen copy of the pre-relational monolithic TSO checker.

Kept verbatim (imports aside) as the oracle for the equivalence
property tests in ``test_model_engine.py``: the relational engine's
TSO spec must agree with this implementation on accept/reject before
the monolith could be deleted from ``src``.  Do not modernise.

We follow the standard x86-TSO axiomatic formulation (Owens/Sarkar/Sewell;
herd's ``x86tso.cat``):

1. **SC per location**: for every address, ``po-loc ∪ rf ∪ co ∪ fr`` is
   acyclic.
2. **Atomicity**: a read-modify-write's write is the immediate coherence
   successor of the version it read.
3. **Global happens-before**: ``ghb = ppo ∪ rfe ∪ co ∪ fr`` is acyclic,
   where ``ppo`` is program order minus store→load pairs (the store
   buffer relaxation) and atomics act as full fences.  Internal rf
   (store-buffer forwarding) is excluded from ghb, as x86-TSO allows a
   load to read its own core's store early.

The coherence order ``co`` comes straight from the simulator: stores
perform while holding the line in M state, so their perform order *is*
the per-address coherence order.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.errors import TSOViolationError
from repro.consistency.execution import ExecutionLog, MemEvent

Edge = Tuple[int, int]


def legacy_check_tso(log: ExecutionLog) -> None:
    """Raise :class:`TSOViolationError` if the execution violates TSO."""
    events = log.events
    if not events:
        return
    _check_atomicity(log)
    _check_sc_per_location(log)
    _check_global_order(log)


# --------------------------------------------------------------------- graph
def _find_cycle(n: int, adjacency: Dict[int, Set[int]]) -> Optional[List[int]]:
    """Return one cycle (as a node list) if the graph has any, else None."""
    indegree = [0] * n
    for src, dsts in adjacency.items():
        for dst in dsts:
            indegree[dst] += 1
    queue = deque(i for i in range(n) if indegree[i] == 0)
    removed = 0
    while queue:
        node = queue.popleft()
        removed += 1
        for dst in adjacency.get(node, ()):
            indegree[dst] -= 1
            if indegree[dst] == 0:
                queue.append(dst)
    if removed == n:
        return None
    # A cycle exists among nodes with indegree > 0.  Strip nodes with no
    # successor inside the remainder (they hang off the cycle), then walk
    # successors until a node repeats.
    remaining = {i for i in range(n) if indegree[i] > 0}
    while True:
        dead = [node for node in remaining
                if not any(d in remaining for d in adjacency.get(node, ()))]
        if not dead:
            break
        remaining.difference_update(dead)
    start = next(iter(remaining))
    path: List[int] = []
    seen: Dict[int, int] = {}
    node = start
    while node not in seen:
        seen[node] = len(path)
        path.append(node)
        node = next(iter(d for d in adjacency.get(node, ()) if d in remaining))
    return path[seen[node]:]


def _describe(events: List[MemEvent], cycle: Iterable[int]) -> str:
    return " -> ".join(
        f"[{events[i].kind} c{events[i].core}#{events[i].seq} "
        f"a={events[i].addr:#x} r={events[i].version_read} "
        f"w={events[i].version_written}]"
        for i in cycle
    )


# ----------------------------------------------------------------- atomicity
def _check_atomicity(log: ExecutionLog) -> None:
    for event in log.events:
        if event.kind != "at":
            continue
        co = log.coherence_order.get(event.addr, [])
        try:
            write_pos = co.index(event.version_written)
        except ValueError:
            raise TSOViolationError(
                f"atomic wrote version {event.version_written} missing from "
                f"coherence order of {event.addr:#x}"
            )
        read_pos = -1 if event.version_read == 0 else co.index(event.version_read)
        if write_pos != read_pos + 1:
            raise TSOViolationError(
                f"atomicity violated at {event.addr:#x}: read version "
                f"{event.version_read} (pos {read_pos}) but wrote "
                f"{event.version_written} (pos {write_pos})"
            )


# --------------------------------------------------------------- per-address
def _check_sc_per_location(log: ExecutionLog) -> None:
    events = log.events
    by_addr: Dict[int, List[int]] = defaultdict(list)
    for idx, event in enumerate(events):
        by_addr[event.addr].append(idx)
    writer_of: Dict[int, int] = {}
    for idx, event in enumerate(events):
        if event.version_written is not None:
            writer_of[event.version_written] = idx
    for addr, idxs in by_addr.items():
        adjacency: Dict[int, Set[int]] = defaultdict(set)
        local = {global_idx: local_idx for local_idx, global_idx in enumerate(idxs)}
        # po-loc: consecutive same-core accesses to this address.
        last_by_core: Dict[int, int] = {}
        for global_idx in sorted(idxs, key=lambda i: (events[i].core, events[i].seq)):
            event = events[global_idx]
            prev = last_by_core.get(event.core)
            if prev is not None:
                adjacency[local[prev]].add(local[global_idx])
            last_by_core[event.core] = global_idx
        co = log.coherence_order.get(addr, [])
        co_pos = {version: pos for pos, version in enumerate(co)}
        # co: consecutive coherence-order edges.
        for pos in range(len(co) - 1):
            src, dst = writer_of.get(co[pos]), writer_of.get(co[pos + 1])
            if src is not None and dst is not None:
                adjacency[local[src]].add(local[dst])
        for global_idx in idxs:
            event = events[global_idx]
            if event.version_read is None:
                continue
            version = event.version_read
            # rf: writer -> reader.
            writer = writer_of.get(version)
            if writer is not None and writer != global_idx:
                adjacency[local[writer]].add(local[global_idx])
            # fr: reader -> next coherence-order writer.
            next_pos = 0 if version == 0 else co_pos.get(version, -2) + 1
            if 0 <= next_pos < len(co):
                successor = writer_of.get(co[next_pos])
                if successor is not None and successor != global_idx:
                    adjacency[local[global_idx]].add(local[successor])
        cycle = _find_cycle(len(idxs), adjacency)
        if cycle is not None:
            raise TSOViolationError(
                f"coherence (SC-per-location) violated at {addr:#x}: "
                + _describe(events, [idxs[i] for i in cycle])
            )


# -------------------------------------------------------------------- global
def _ppo_edges(events: List[MemEvent]) -> Iterable[Edge]:
    """Generators of TSO preserved program order (po minus store->load).

    Chains: every event is ordered after the last read (R->R, R->W); a
    write is ordered after the last write (W->W); atomics are both read
    and write, which makes them full fences.
    """
    by_core: Dict[int, List[int]] = defaultdict(list)
    for idx, event in enumerate(events):
        by_core[event.core].append(idx)
    for idxs in by_core.values():
        idxs.sort(key=lambda i: events[i].seq)
        last_read: Optional[int] = None
        last_write: Optional[int] = None
        for idx in idxs:
            event = events[idx]
            if last_read is not None and last_read != idx:
                yield last_read, idx
            is_read = event.kind in ("ld", "at")
            is_write = event.kind in ("st", "at")
            if is_write:
                if last_write is not None:
                    yield last_write, idx
                last_write = idx
            if is_read:
                last_read = idx


def _check_global_order(log: ExecutionLog) -> None:
    events = log.events
    adjacency: Dict[int, Set[int]] = defaultdict(set)
    for src, dst in _ppo_edges(events):
        adjacency[src].add(dst)
    writer_of: Dict[int, int] = {}
    for idx, event in enumerate(events):
        if event.version_written is not None:
            writer_of[event.version_written] = idx
    # co edges (consecutive) per address.
    for addr, co in log.coherence_order.items():
        for pos in range(len(co) - 1):
            src, dst = writer_of.get(co[pos]), writer_of.get(co[pos + 1])
            if src is not None and dst is not None:
                adjacency[src].add(dst)
    co_positions: Dict[int, Dict[int, int]] = {
        addr: {v: p for p, v in enumerate(co)}
        for addr, co in log.coherence_order.items()
    }
    # rfe and fr edges.
    for idx, event in enumerate(events):
        if event.version_read is None:
            continue
        version = event.version_read
        writer = writer_of.get(version)
        if writer is not None and writer != idx \
                and events[writer].core != event.core:
            adjacency[writer].add(idx)  # rfe only
        co = log.coherence_order.get(event.addr, [])
        if version == 0:
            next_pos = 0
        else:
            next_pos = co_positions.get(event.addr, {}).get(version, -2) + 1
        if 0 <= next_pos < len(co):
            successor = writer_of.get(co[next_pos])
            if successor is not None and successor != idx:
                adjacency[idx].add(successor)  # fr (fri and fre)
    cycle = _find_cycle(len(events), adjacency)
    if cycle is not None:
        raise TSOViolationError(
            "TSO global order violated: " + _describe(events, cycle)
        )
