"""The operational x86-TSO reference model, and its agreement with the
axiomatic checker."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency.execution import ExecutionLog
from repro.consistency.operational import (
    TOp,
    enumerate_outcomes,
    ld,
    outcome_reachable,
    rmw,
    st as t_st,
)
from repro.consistency.tso_checker import check_tso
from repro.common.errors import TSOViolationError


def test_store_buffering_00_reachable():
    threads = [
        [t_st("x", 1), ld("y", "r0")],
        [t_st("y", 1), ld("x", "r1")],
    ]
    assert outcome_reachable(threads, {"t0:r0": 0, "t1:r1": 0})
    assert outcome_reachable(threads, {"t0:r0": 1, "t1:r1": 1})


def test_load_load_reordering_unreachable():
    # Paper Table 1: {ra==1, rb==0} must not be reachable.
    threads = [
        [ld("y", "ra"), ld("x", "rb")],
        [t_st("x", 1), t_st("y", 1)],
    ]
    assert not outcome_reachable(threads, {"t0:ra": 1, "t0:rb": 0})
    for combo in ({"t0:ra": 0, "t0:rb": 0}, {"t0:ra": 0, "t0:rb": 1},
                  {"t0:ra": 1, "t0:rb": 1}):
        assert outcome_reachable(threads, combo)


def test_load_buffering_unreachable():
    threads = [
        [ld("x", "r0"), t_st("y", 1)],
        [ld("y", "r1"), t_st("x", 1)],
    ]
    assert not outcome_reachable(threads, {"t0:r0": 1, "t1:r1": 1})


def test_message_passing_violation_unreachable():
    threads = [
        [t_st("d", 42), t_st("f", 1)],
        [ld("f", "rf"), ld("d", "rd")],
    ]
    assert not outcome_reachable(threads, {"t1:rf": 1, "t1:rd": 0})
    assert outcome_reachable(threads, {"t1:rf": 1, "t1:rd": 42})


def test_forwarding_own_store_early():
    # n6-style: a thread sees its own buffered store before others do.
    threads = [
        [t_st("x", 1), ld("x", "r0"), ld("y", "r1")],
        [t_st("y", 1), ld("y", "r2"), ld("x", "r3")],
    ]
    assert outcome_reachable(
        threads, {"t0:r0": 1, "t0:r1": 0, "t1:r2": 1, "t1:r3": 0})


def test_rmw_serialization():
    threads = [
        [rmw("c", "r0", 1)],
        [rmw("c", "r1", 2)],
    ]
    outcomes = {frozenset(o) for o in enumerate_outcomes(threads)}
    vals = {(dict(o)["t0:r0"], dict(o)["t1:r1"]) for o in outcomes}
    # One RMW reads 0, the other reads the first one's write.
    assert vals == {(0, 1), (2, 0)}


def test_rmw_acts_as_fence():
    # SB shape with RMWs in the middle is NOT allowed to read 0,0.
    threads = [
        [t_st("x", 1), rmw("z", "ra", 1), ld("y", "r0")],
        [t_st("y", 1), rmw("w", "rb", 1), ld("x", "r1")],
    ]
    assert not outcome_reachable(threads, {"t0:r0": 0, "t1:r1": 0})


def test_iriw_unreachable():
    threads = [
        [t_st("x", 1)],
        [t_st("y", 1)],
        [ld("x", "r0"), ld("y", "r1")],
        [ld("y", "r2"), ld("x", "r3")],
    ]
    assert not outcome_reachable(
        threads, {"t2:r0": 1, "t2:r1": 0, "t3:r2": 1, "t3:r3": 0})


# --------------------------------------------------- checker cross-validation
def _log_for(threads, reads, co_orders):
    """Build an ExecutionLog for given read-from choices + co orders."""
    log = ExecutionLog()
    versions = {}
    for tid, ops in enumerate(threads):
        for idx, op in enumerate(ops):
            if op.kind in ("st", "rmw"):
                versions[(tid, idx)] = log.new_version(
                    tid, idx, _addr(op.loc), op.value)
    for loc, order in co_orders.items():
        for key in order:
            log.store_performed(versions[key])
    for tid, ops in enumerate(threads):
        for idx, op in enumerate(ops):
            if op.kind == "st":
                log.record_store(tid, idx, _addr(op.loc),
                                 versions[(tid, idx)], cycle=idx)
            elif op.kind == "ld":
                src = reads[(tid, idx)]
                version = 0 if src is None else versions[src]
                log.record_load(tid, idx, _addr(op.loc), version, cycle=idx)
            else:
                src = reads[(tid, idx)]
                version = 0 if src is None else versions[src]
                log.record_atomic(tid, idx, _addr(op.loc), version,
                                  versions[(tid, idx)], cycle=idx)
    return log


def _addr(loc: str) -> int:
    return 0x1000 + (ord(loc[0]) - ord("a")) * 0x40


@pytest.mark.parametrize("shape,forbidden", [
    # (threads, forbidden read-from assignment for the reader loads)
    (
        [[ld("y", "ra"), ld("x", "rb")],
         [t_st("x", 1), t_st("y", 1)]],
        {(0, 0): (1, 1), (0, 1): None},  # ld y -> new, ld x -> initial
    ),
    (
        [[t_st("d", 42), t_st("f", 1)],
         [ld("f", "rf"), ld("d", "rd")]],
        {(1, 0): (0, 1), (1, 1): None},
    ),
])
def test_axiomatic_checker_rejects_operationally_unreachable(shape, forbidden):
    """Executions the operational model cannot reach must be rejected by
    the axiomatic checker under EVERY per-location coherence order."""
    threads = shape
    writers = {}
    for tid, ops in enumerate(threads):
        for idx, op in enumerate(ops):
            if op.kind in ("st", "rmw"):
                writers.setdefault(op.loc, []).append((tid, idx))
    any_accepted = False
    orders_per_loc = [
        list(itertools.permutations(keys)) for keys in writers.values()
    ]
    for combo in itertools.product(*orders_per_loc):
        co_orders = dict(zip(writers.keys(), combo))
        log = _log_for(threads, forbidden, co_orders)
        try:
            check_tso(log)
            any_accepted = True
        except TSOViolationError:
            pass
    assert not any_accepted


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 1), st.sampled_from(["ld", "st"]),
              st.sampled_from(["x", "y"])),
    min_size=2, max_size=6))
def test_sc_interleavings_always_operationally_reachable(ops):
    """Any SC interleaving outcome must be reachable operationally (SC
    is a subset of TSO)."""
    threads = [[], []]
    memory = {}
    regs = {}
    counters = {0: 0, 1: 0}
    for tid, kind, loc in ops:
        idx = counters[tid]
        counters[tid] += 1
        if kind == "st":
            threads[tid].append(t_st(loc, tid * 100 + idx + 1))
            memory[loc] = tid * 100 + idx + 1
        else:
            reg = f"r{idx}"
            threads[tid].append(ld(loc, reg))
            regs[f"t{tid}:{reg}"] = memory.get(loc, 0)
    assert outcome_reachable(threads, regs)
