"""Directed protocol sequences: load-retry paths and network FIFO.

These drive a :class:`VerifSystem` by hand (deliver messages one by
one) instead of exploring, to pin down the two retry flavours the core
must handle:

* ``on_must_retry(False)`` — a cache hit lost the line to an
  invalidation inside the hit latency; the access replays immediately.
* ``on_must_retry(True)`` — a tear-off (use-once, uncacheable) copy
  arrived but the load was not the ordered SoS load; the core must
  wait for the write to complete before retrying.
"""

from repro.common.types import CacheState, LineAddr, MsgType
from repro.verification import VerifSystem

LINE = LineAddr(0x40)
ADDR = 0x1000
LINE_B = LineAddr(0x44)
ADDR_B = 0x1100


def drain(system, limit=500):
    """Deliver pending messages in FIFO order until the network is
    empty (one fixed interleaving; no branching)."""
    for __ in range(limit):
        system.settle()
        choices = system.network.deliverable()
        if not choices:
            return
        system.network.deliver(choices[0])
    raise AssertionError("network did not drain")


def pending_index(system, msg_type, dst):
    for idx, msg in enumerate(system.network.pending):
        if msg.msg_type is msg_type and msg.dst == dst:
            return idx
    raise AssertionError(
        f"no pending {msg_type} to {dst}: {system.network.pending}")


def record_retries(core):
    """Route the core's retry callback through a recorder capturing the
    ``wait_for_sos`` argument."""
    calls = []

    def recorder(wait_for_sos=True):
        calls.append(wait_for_sos)
        core.load_retries += 1

    core._on_retry = recorder
    return calls


def test_hit_that_loses_line_retries_without_sos_wait():
    """Invalidation lands between hit-start and hit-finish: the load
    must replay (``wait_for_sos=False``), not return the stale value."""
    system = VerifSystem(4)
    system.cores[0].issue_load(ADDR)
    system.cores[2].issue_load(ADDR)
    drain(system)  # line shared in cores 0 and 2
    assert system.caches[0].line_state(LINE) is CacheState.S

    system.cores[1].request_write(LINE)
    system.settle()
    system.network.deliver(pending_index(system, MsgType.GETX,
                                         system.caches[1].home_of(LINE)))
    system.settle()  # directory sent INVs to both sharers

    calls = record_retries(system.cores[0])
    system.cores[0].issue_load(ADDR)  # hit: finish event is now pending
    system.network.deliver(pending_index(system, MsgType.INV, 0))
    system.settle()  # hit completes against the invalidated line

    assert calls == [False]
    assert len(system.cores[0].load_results) == 1  # only the warm-up load
    drain(system)
    assert system.cores[1].writes_granted == 1
    # The replayed access (a clean miss now) must still be serviceable.
    system.cores[0].issue_load(ADDR)
    drain(system)
    assert len(system.cores[0].load_results) == 2


def test_tearoff_to_unordered_load_retries_with_sos_wait():
    """A tear-off copy reaches a core whose load is *not* the ordered
    SoS load: the copy must not be consumed (``wait_for_sos=True``)."""
    system = VerifSystem(4)
    system.cores[0].issue_load(ADDR)
    drain(system)
    system.cores[0].lockdowns.add(LINE)
    system.cores[1].request_write(LINE)
    drain(system)  # Nacked invalidation: the directory is in WritersBlock
    assert system.caches[1].write_blocked(LINE) or \
        system.cores[1].writes_granted == 0

    core2 = system.cores[2]
    calls = record_retries(core2)
    core2._is_ordered = lambda: False  # scripted: not the SoS load
    core2.issue_load(ADDR)
    drain(system)  # GetS -> WritersBlock'd home -> tear-off back

    assert calls == [True]
    assert core2.load_results == []
    assert core2.load_retries == 1

    # Release the lockdown; the blocked write completes and the
    # replayed load can hit the new value cacheably.
    system.cores[0].release_lockdown(LINE)
    drain(system)
    assert system.cores[1].writes_granted == 1
    core2.issue_load(ADDR)
    drain(system)
    assert len(core2.load_results) == 1
    assert core2.load_results[0][2] is False  # cacheable this time


def test_tearoff_to_ordered_load_is_consumed_once():
    """The ordered (SoS) load consumes the tear-off exactly once and is
    marked uncacheable; the line is not installed."""
    system = VerifSystem(4)
    system.cores[0].issue_load(ADDR)
    drain(system)
    system.cores[0].lockdowns.add(LINE)
    system.cores[1].request_write(LINE)
    drain(system)

    core2 = system.cores[2]
    core2.issue_load(ADDR)  # scripted cores are ordered by default
    drain(system)
    assert len(core2.load_results) == 1
    assert core2.load_results[0][2] is True  # served by the tear-off
    assert system.caches[2].line_state(LINE) in (None, CacheState.I)

    system.cores[0].release_lockdown(LINE)
    drain(system)
    assert system.cores[1].writes_granted == 1


def test_buffering_network_is_fifo_per_channel():
    """Two requests on the same (src, dst, port) channel: only the
    older is deliverable, and delivery order follows issue order."""
    system = VerifSystem(4)
    # Two different lines with the same home bank -> same channel.
    assert system.caches[0].home_of(LINE) == system.caches[0].home_of(LINE_B)
    system.cores[0].issue_load(ADDR)
    system.cores[0].issue_load(ADDR_B)
    system.settle()
    pending = system.network.pending
    assert [m.msg_type for m in pending] == [MsgType.GETS, MsgType.GETS]
    assert [int(m.line) for m in pending] == [int(LINE), int(LINE_B)]
    # FIFO head only: the younger same-channel GetS is not deliverable.
    assert system.network.deliverable() == [0]
    system.network.deliver(0)
    system.settle()
    heads = [system.network.pending[i]
             for i in system.network.deliverable()]
    assert any(m.msg_type is MsgType.GETS and int(m.line) == int(LINE_B)
               for m in heads)
    drain(system)
    assert len(system.cores[0].load_results) == 2
