"""Unit tests for the verification properties and VerifSystem plumbing."""

from repro.coherence.private_cache import LoadRequest
from repro.common.types import CacheState, LineAddr
from repro.verification import (
    VerifSystem,
    no_residue,
    sos_never_blocked,
    swmr_invariant,
    writersblock_blocks_writes,
)

LINE = LineAddr(0x40)
ADDR = 0x1000


def settled_read(system, tile=0):
    system.cores[tile].issue_load(ADDR)
    system.settle()
    while system.network.pending:
        system.network.deliver(0)
        system.settle()


def test_clean_system_has_no_violations():
    system = VerifSystem()
    settled_read(system)
    assert swmr_invariant(system) is None
    assert writersblock_blocks_writes(system) is None
    assert no_residue(system) is None
    assert system.cores[0].load_results == [(0, (0, 0), False)]


def test_swmr_detects_forged_double_owner():
    system = VerifSystem()
    settled_read(system, tile=0)
    # Forge a second exclusive copy at tile 1.
    from repro.mem.line_data import LineData
    from repro.coherence.private_cache import PrivateLine

    system.caches[1]._lines.insert(
        LINE, PrivateLine(state=CacheState.M, data=LineData()))
    problem = swmr_invariant(system)
    assert problem and "SWMR" in problem


def test_no_residue_flags_pending_messages():
    system = VerifSystem()
    system.cores[0].issue_load(ADDR)
    system.settle()
    assert system.network.pending  # the GetS is parked
    assert no_residue(system) is not None


def test_fingerprint_changes_with_state():
    system = VerifSystem()
    before = system.fingerprint()
    system.cores[0].issue_load(ADDR)
    system.settle()
    assert system.fingerprint() != before


def _ordered_request(byte_addr=ADDR, ordered=True):
    return LoadRequest(byte_addr=byte_addr,
                       is_ordered=lambda: ordered,
                       on_value=lambda value, uncacheable: None,
                       on_must_retry=lambda wait_for_sos=True: None)


def test_sos_never_blocked_clean_on_fresh_and_hinted_states():
    system = VerifSystem()
    assert sos_never_blocked(system) is None
    # A blocked-hinted write with an ordered waiting load is fine as
    # long as the reserved quota can still launch the bypass.
    mshrs = system.caches[0].mshrs
    entry = mshrs.allocate(LINE, "write")
    entry.blocked_hint = True
    entry.waiting_loads.append(_ordered_request())
    assert mshrs.can_allocate(sos=True)
    assert sos_never_blocked(system) is None


def test_sos_never_blocked_flags_exhausted_reservation():
    """Blocked write + parked SoS load + no free (even reserved) MSHR:
    the §3.5.2 capability is gone and the invariant must fire."""
    system = VerifSystem()
    mshrs = system.caches[0].mshrs
    entry = mshrs.allocate(LINE, "write")
    entry.blocked_hint = True
    entry.waiting_loads.append(_ordered_request())
    filler = LineAddr(int(LINE) + 1)
    while mshrs.can_allocate():
        mshrs.allocate(filler, "read")
        filler = LineAddr(int(filler) + 1)
    while mshrs.can_allocate(sos=True):
        bypass = mshrs.allocate(filler, "read", sos_bypass=True)
        bypass.uncacheable = True
        filler = LineAddr(int(filler) + 1)
    problem = sos_never_blocked(system)
    assert problem and "SoS load blocked" in problem


def test_sos_never_blocked_flags_malformed_bypass_entry():
    """A bypass MSHR must be an uncacheable read and never be
    blocked-hinted (the directory serves tear-offs during WritersBlock)."""
    system = VerifSystem()
    mshrs = system.caches[0].mshrs
    entry = mshrs.allocate(LINE, "read", sos_bypass=True)
    entry.uncacheable = True
    assert sos_never_blocked(system) is None
    entry.blocked_hint = True
    problem = sos_never_blocked(system)
    assert problem and "blocked-hinted" in problem
    entry.blocked_hint = False
    entry.uncacheable = False
    problem = sos_never_blocked(system)
    assert problem and "uncacheable" in problem


def test_deliverable_respects_channel_fifo():
    system = VerifSystem()
    # Two loads from the same tile to the same bank: only the older
    # message of that channel is deliverable.
    system.cores[0].issue_load(ADDR)
    system.cores[0].issue_load(ADDR + 0x100)  # line 0x44: same bank 0
    system.settle()
    same_channel = [m for m in system.network.pending
                    if (m.src, m.dst, m.dst_port) == (0, 0, "llc")]
    assert len(same_channel) == 2
    choices = system.network.deliverable()
    chosen = [system.network.pending[i] for i in choices]
    assert sum(1 for m in chosen
               if (m.src, m.dst, m.dst_port) == (0, 0, "llc")) == 1
