"""Satellites: interleaving enumeration counts and seeded sweeps.

``enumerate_interleavings`` now recurses over residual lengths (each
merge built exactly once — the multinomial count) instead of
deduplicating permutations; ``sweep_litmus`` draws its perturbations
from an explicit caller-owned ``random.Random`` so the bench drivers
pin byte-stable schedules.
"""

import math
import random

from repro.consistency.litmus import (SimpleOp, enumerate_interleavings,
                                      perturbation_delays, sweep_litmus,
                                      table1_test)


def threads_of(lengths):
    return [[SimpleOp(tid, "st", f"v{tid}_{i}") for i in range(n)]
            for tid, n in enumerate(lengths)]


def multinomial(lengths):
    total = math.factorial(sum(lengths))
    for n in lengths:
        total //= math.factorial(n)
    return total


def test_interleaving_count_matches_multinomial():
    for lengths in ([2, 2], [3, 3], [2, 2, 2], [1, 2, 3]):
        merges = list(enumerate_interleavings(threads_of(lengths)))
        assert len(merges) == multinomial(lengths), lengths
        orders = {tuple(id(op) for op in order) for order, __ in merges}
        assert len(orders) == len(merges), f"duplicate merge: {lengths}"


def test_four_thread_interleavings_enumerable():
    """[2,2,2,2] = 2520 distinct merges — feasible only because the
    enumeration no longer materializes all 8! permutations."""
    merges = list(enumerate_interleavings(threads_of([2, 2, 2, 2])))
    assert len(merges) == 2520


def test_perturbation_delays_are_caller_seeded():
    test = table1_test()
    a = perturbation_delays(test, 5, random.Random(2017))
    b = perturbation_delays(test, 5, random.Random(2017))
    assert a == b
    assert perturbation_delays(test, 5, random.Random(1)) != a
    for combo in a:
        assert len(combo) == len(test.threads)
        assert all(0 <= d <= 120 and d % 10 == 0 for d in combo)


def test_perturbations_ignore_global_random_state():
    test = table1_test()
    random.seed(123)
    a = perturbation_delays(test, 4, random.Random(7))
    random.seed(456)
    b = perturbation_delays(test, 4, random.Random(7))
    assert a == b


def test_sweep_litmus_is_deterministic_under_pinned_rng():
    test = table1_test()
    first = sweep_litmus(test, delays=((0, 0),), perturb=2,
                         rng=random.Random(2017))
    second = sweep_litmus(test, delays=((0, 0),), perturb=2,
                          rng=random.Random(2017))
    assert len(first) == len(second) == 3
    assert [o.registers for o in first] == [o.registers for o in second]
    assert not any(o.forbidden_hit for o in first)
    assert not any(o.checker_violation for o in first)


def test_bench_drivers_pin_their_seeds():
    """The drivers must not fall back to ambient randomness."""
    from repro.exp import drivers

    assert drivers.TABLE1_SWEEP_SEED == 2017
    assert drivers.TABLE1_SWEEP_PERTURB == 2
    assert drivers.CONFORM_SEED == 0
    assert drivers.CONFORM_PERTURB == 2
