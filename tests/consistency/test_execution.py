"""Execution log: versions, coherence order, event recording."""

from repro.consistency.execution import ExecutionLog


def test_versions_are_unique_and_monotonic():
    log = ExecutionLog()
    v1 = log.new_version(0, 0, 0x10, 5)
    v2 = log.new_version(1, 0, 0x10, 6)
    assert v2 > v1 > 0
    assert log.stores[v1].value == 5
    assert log.stores[v2].core == 1


def test_coherence_order_is_perform_order():
    log = ExecutionLog()
    v1 = log.new_version(0, 0, 0x10, 1)
    v2 = log.new_version(1, 0, 0x10, 2)
    log.store_performed(v2)  # performs first despite later creation
    log.store_performed(v1)
    assert log.coherence_order[0x10] == [v2, v1]


def test_disabled_log_records_nothing():
    log = ExecutionLog(enabled=False)
    version = log.new_version(0, 0, 0x10, 1)
    log.record_store(0, 0, 0x10, version, cycle=0)
    log.record_load(0, 1, 0x10, version, cycle=1)
    log.record_atomic(0, 2, 0x10, 0, version, cycle=2)
    assert log.events == []
    # Versions still mint (the simulator relies on them).
    assert version == 1


def test_events_by_core_sorted_by_seq():
    log = ExecutionLog()
    log.record_load(0, 5, 0x10, 0, cycle=9)
    log.record_load(0, 2, 0x20, 0, cycle=1)
    log.record_load(1, 0, 0x10, 0, cycle=3)
    by_core = log.events_by_core()
    assert [e.seq for e in by_core[0]] == [2, 5]
    assert [e.seq for e in by_core[1]] == [0]


def test_value_of():
    log = ExecutionLog()
    assert log.value_of(0) == 0  # initial
    version = log.new_version(0, 0, 0x10, 42)
    assert log.value_of(version) == 42
