"""Bounded exploration of the protocol under all delivery orders."""

import pytest

from repro.common.types import CacheState, DirState, LineAddr
from repro.verification import (
    VerifSystem,
    combined_invariant,
    explore,
    no_residue,
)

LINE = LineAddr(0x40)
ADDR = 0x1000


def final_all_done(expect_loads=0, expect_grants=0):
    def check(system):
        residue = no_residue(system)
        if residue:
            return residue
        loads = sum(len(core.load_results) for core in system.cores)
        grants = sum(core.writes_granted for core in system.cores)
        if loads < expect_loads:
            return f"only {loads}/{expect_loads} loads completed"
        if grants < expect_grants:
            return f"only {grants}/{expect_grants} writes granted"
        return None
    return check


def test_read_read_write_explores_clean():
    """Two readers then a writer: every delivery order must preserve
    SWMR and terminate with the write granted."""

    def setup(system):
        system.cores[0].issue_load(ADDR)
        system.cores[1].issue_load(ADDR)

    def on_quiescent(system):
        # Once both reads settled, inject the write exactly once.
        # (Scratch lives on the system, so it forks with each branch.)
        if not system.scratch.get("write") and sum(
                len(c.load_results) for c in system.cores) == 2:
            system.scratch["write"] = True
            system.cores[1].request_write(LINE)

    result = explore(setup, combined_invariant,
                     final_all_done(expect_loads=2, expect_grants=1),
                     on_quiescent=on_quiescent)
    assert result.ok, result.violations
    assert result.paths_completed >= 1
    assert result.states_explored > 2


def test_concurrent_writers_all_orders():
    """Two racing writers: all interleavings serialize correctly."""

    def setup(system):
        system.cores[0].request_write(LINE)
        system.cores[1].request_write(LINE)

    result = explore(setup, combined_invariant,
                     final_all_done(expect_grants=2))
    assert result.ok, result.violations
    assert result.paths_completed >= 1


def test_read_vs_write_race_all_orders():
    def setup(system):
        system.cores[0].issue_load(ADDR)
        system.cores[1].request_write(LINE)

    result = explore(setup, combined_invariant,
                     final_all_done(expect_loads=1, expect_grants=1))
    assert result.ok, result.violations


def test_lockdown_write_block_all_orders():
    """The WritersBlock handshake under every delivery order: a reader
    holds a lockdown; the writer must stay blocked until the deferred
    ack, in all interleavings, and every path must terminate."""

    def setup(system):
        system.cores[0].issue_load(ADDR)

    def on_quiescent(system):
        core0, core1 = system.cores[0], system.cores[1]
        if not system.scratch.get("locked") and core0.load_results:
            system.scratch["locked"] = True
            core0.lockdowns.add(LINE)
            return
        if system.scratch.get("locked") and not system.scratch.get("write"):
            system.scratch["write"] = True
            core1.request_write(LINE)
            return
        # Release the lockdown once the invalidation was Nacked.
        if LINE in core0.nacked:
            core0.release_lockdown(LINE)

    def invariant(system):
        problem = combined_invariant(system)
        if problem:
            return problem
        # The writer must never be granted while the lockdown holds.
        if LINE in system.cores[0].lockdowns \
                and system.cores[1].writes_granted:
            return "write granted while lockdown held"
        return None

    result = explore(setup, invariant,
                     final_all_done(expect_loads=1, expect_grants=1),
                     on_quiescent=on_quiescent)
    assert result.ok, result.violations
    assert result.paths_completed >= 1


def test_broken_invariant_is_reported():
    """Sanity: an impossible invariant must produce violations."""

    def setup(system):
        system.cores[0].issue_load(ADDR)

    result = explore(setup, lambda s: "always broken",
                     lambda s: None)
    assert not result.ok
    assert "always broken" in result.violations[0]


def test_three_tile_invalidation_fanout():
    """Two sharers invalidated by a third writer: acks from different
    sharers race in every order."""

    def setup(system):
        system.cores[0].issue_load(ADDR)
        system.cores[1].issue_load(ADDR)

    def on_quiescent(system):
        if not system.scratch.get("write") and sum(
                len(c.load_results) for c in system.cores) == 2:
            system.scratch["write"] = True
            system.cores[2].request_write(LINE)

    result = explore(setup, combined_invariant,
                     final_all_done(expect_loads=2, expect_grants=1),
                     on_quiescent=on_quiescent)
    assert result.ok, result.violations
    assert result.states_explored > 5


def test_fingerprint_dedup_reduces_state_count():
    """Symmetric scenarios must be deduplicated by fingerprinting."""

    def setup(system):
        system.cores[0].issue_load(ADDR)
        system.cores[1].issue_load(ADDR + 8)  # same line, both readers

    result = explore(setup, combined_invariant,
                     final_all_done(expect_loads=2))
    assert result.ok, result.violations
    # The search converges (dedup or small state count), not explodes.
    assert result.states_explored < 2000


def test_explorer_telemetry_is_consistent():
    """The telemetry counters the conform/coverage paths consume must
    agree with each other: the depth histogram partitions the explored
    states, memoization covers every unique fingerprint, and the
    derived ratios stay in [0, 1]."""

    def setup(system):
        system.cores[0].issue_load(ADDR)
        system.cores[1].request_write(LINE)

    result = explore(setup, combined_invariant,
                     final_all_done(expect_loads=1, expect_grants=1))
    assert result.ok, result.violations
    assert result.transitions > 0
    assert result.frontier_peak >= 1
    assert sum(result.depth_histogram.values()) == result.states_explored
    assert result.memoized == result.states_explored
    assert 0.0 <= result.memo_hit_rate <= 1.0
    assert 0.0 <= result.sleep_prune_ratio <= 1.0


def test_explorer_progress_and_coverage_hooks():
    """`explore(coverage=...)` funnels every fork into one observer and
    the progress callback observes monotone state counts."""
    from repro.obs.coverage import CoverageObserver

    observer = CoverageObserver("baseline", source="explore")
    seen = []

    def setup(system):
        system.cores[0].issue_load(ADDR)
        system.cores[1].request_write(LINE)

    result = explore(setup, combined_invariant, lambda s: None,
                     coverage=observer, progress=seen.append)
    assert result.ok, result.violations
    assert observer.counts, "exploration recorded no transitions"
    # One delivery can fire several component transitions (cache + dir),
    # so the observer's tally dominates the explorer's delivery count.
    assert sum(observer.to_map().source_totals("baseline").values()) \
        >= result.transitions
    assert seen == sorted(seen)


def test_explorer_respects_max_states():
    def setup(system):
        for core in system.cores:
            core.issue_load(ADDR)
            core.request_write(LINE)

    result = explore(setup, combined_invariant, lambda s: None,
                     max_states=50)
    assert result.states_explored <= 50
