"""Litmus tests on the full simulator + Table 2 enumeration."""

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.consistency.litmus import (
    SimpleOp,
    atomic_mutex_test,
    corr_test,
    enumerate_interleavings,
    iriw_test,
    legal_tso_outcomes,
    message_passing_test,
    run_litmus,
    standard_suite,
    store_buffer_test,
    sweep_litmus,
    table1_test,
    table3_test,
)

PROTECTED_MODES = [CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB]


def params_for(test, mode):
    cores = 16 if len(test.threads) > 4 else 4
    return table6_system("SLM", num_cores=cores, commit_mode=mode)


@pytest.mark.parametrize("mode", PROTECTED_MODES)
@pytest.mark.parametrize("test", standard_suite(), ids=lambda t: t.name)
def test_litmus_suite_clean_under_protected_modes(test, mode):
    for outcome in sweep_litmus(test, params_for(test, mode),
                                delays=((0, 0), (0, 60), (60, 0))):
        assert not outcome.forbidden_hit, outcome.registers
        assert outcome.checker_violation is None


def test_table1_forbidden_outcome_reachable_without_protection():
    test = table1_test()
    params = params_for(test, CommitMode.OOO_UNSAFE)
    hit = False
    for d0 in (0, 20, 40):
        for d1 in (0, 30, 60, 90):
            outcome = run_litmus(test, params, extra_delays=(d0, d1))
            if outcome.forbidden_hit:
                hit = True
                assert outcome.checker_violation is not None
                break
        if hit:
            break
    assert hit, "Table 1 race never fired in the unsafe ablation"


def test_message_passing_values():
    outcome = run_litmus(message_passing_test(),
                         params_for(message_passing_test(),
                                    CommitMode.OOO_WB))
    assert outcome.registers["rf"] == 1
    assert outcome.registers["rd"] == 42


def test_atomics_serialize():
    outcome = run_litmus(atomic_mutex_test(),
                         params_for(atomic_mutex_test(), CommitMode.OOO_WB))
    assert sorted(outcome.registers.values()) == [0, 1]


# ------------------------------------------------------- Table 2 (analytic)
READER = [SimpleOp(0, "ld", "y"), SimpleOp(0, "ld", "x")]
WRITER = [SimpleOp(1, "st", "x"), SimpleOp(1, "st", "y")]


def test_table2_has_six_interleavings():
    # C(4,2) = 6 interleavings of two 2-op threads.
    assert len(enumerate_interleavings([READER, WRITER])) == 6


def test_table2_legal_outcomes_match_paper():
    outcomes = legal_tso_outcomes([READER, WRITER])
    as_pairs = {(o["t0:ld y"], o["t0:ld x"]) for o in outcomes}
    # Paper Table 2: {old,old}, {old,new}, {new,new} — and NOT {new,old}.
    assert as_pairs == {("old", "old"), ("old", "new"), ("new", "new")}


def test_table2_swapped_loads_reach_the_illegal_outcome():
    # Swapping the loads (the reordering) makes {new, old} reachable —
    # exactly what must be hidden from other cores.
    swapped = [SimpleOp(0, "ld", "x"), SimpleOp(0, "ld", "y")]
    outcomes = legal_tso_outcomes([swapped, WRITER])
    as_pairs = {(o["t0:ld y"], o["t0:ld x"]) for o in outcomes}
    assert ("new", "old") in as_pairs
