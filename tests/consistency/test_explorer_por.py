"""Sleep-set partial-order reduction: soundness and effectiveness."""

from repro.common.types import LineAddr
from repro.conform.scenarios import explore_mp, explore_sos
from repro.verification import (BufferingNetwork, combined_invariant,
                                explore, no_residue)

LINE_A = LineAddr(0x40)
ADDR_A = 0x1000
LINE_B = LineAddr(0x41)
ADDR_B = 0x1040


def _key(msg_type, src, dst, dst_port, line):
    return (msg_type, src, dst, dst_port, int(line))


def test_delivery_key_identity():
    assert BufferingNetwork.independent(
        _key("Data", 1, 0, "cache", LINE_A),
        _key("Data", 1, 2, "cache", LINE_B))


def test_independence_requires_distinct_endpoint_and_line():
    base = _key("Data", 1, 0, "cache", LINE_A)
    # Same endpoint, different line: not independent.
    assert not BufferingNetwork.independent(
        base, _key("Inv", 3, 0, "cache", LINE_B))
    # Different endpoint, same line: not independent.
    assert not BufferingNetwork.independent(
        base, _key("Inv", 3, 2, "cache", LINE_A))
    # Different port counts as a different endpoint.
    assert BufferingNetwork.independent(
        base, _key("GetS", 0, 0, "llc", LINE_B))


def two_line_scenario(system):
    """Cross-line traffic: loads of two lines from disjoint cores — the
    deliveries commute, so sleep sets have something to prune."""
    system.cores[0].issue_load(ADDR_A)
    system.cores[1].issue_load(ADDR_B)
    system.cores[2].issue_load(ADDR_A)
    system.cores[3].issue_load(ADDR_B)


def final_loads(expect):
    def check(system):
        residue = no_residue(system)
        if residue:
            return residue
        loads = sum(len(core.load_results) for core in system.cores)
        if loads < expect:
            return f"only {loads}/{expect} loads completed"
        return None
    return check


def test_por_prunes_and_stays_clean():
    full = explore(two_line_scenario, combined_invariant, final_loads(4),
                   por=False)
    por = explore(two_line_scenario, combined_invariant, final_loads(4),
                  por=True)
    assert full.ok and por.ok
    assert por.sleep_pruned > 0
    assert por.states_explored + por.deduplicated <= \
        full.states_explored + full.deduplicated
    assert por.paths_completed >= 1


def test_por_preserves_reachable_violations():
    """A state-predicate violation reachable under the full search must
    still be reported under POR (the reachable state set is preserved,
    only redundant transitions are dropped)."""

    def tripwire(system):
        problem = combined_invariant(system)
        if problem:
            return problem
        done = sum(len(core.load_results) for core in system.cores)
        if done == 4:
            return "tripwire: all four loads completed"
        return None

    full = explore(two_line_scenario, tripwire, final_loads(4), por=False)
    por = explore(two_line_scenario, tripwire, final_loads(4), por=True)
    assert set(full.violations) == set(por.violations)
    assert "tripwire: all four loads completed" in set(por.violations)


def test_conform_scenarios_clean_with_and_without_por():
    """The 4-tile mp/sos protocol scenarios: deadlock-free and
    SoS-never-blocked in every delivery order, reduced or not."""
    for scenario in (explore_mp, explore_sos):
        por = scenario(por=True)
        full = scenario(por=False)
        assert por.ok, (scenario.__name__, por.violations[:3])
        assert full.ok, (scenario.__name__, full.violations[:3])
        assert por.paths_completed >= 1
        assert por.sleep_pruned > 0, scenario.__name__


def test_explorer_counts_are_deterministic():
    first = explore_sos(por=True)
    second = explore_sos(por=True)
    assert (first.states_explored, first.paths_completed,
            first.deduplicated, first.sleep_pruned) == \
        (second.states_explored, second.paths_completed,
         second.deduplicated, second.sleep_pruned)
