"""Equivalence of the relational TSO spec with the frozen legacy checker.

``tests/consistency/legacy_tso.py`` is a verbatim copy of the
pre-relational monolithic checker.  Before that monolith could be
deleted from ``src``, the relational engine's TSO configuration must
agree with it verdict for verdict:

* on real simulator executions of the conformance corpus (clean,
  protected modes — both accept),
* on deliberately broken executions (OOO_UNSAFE — both reject), and
* on ~200 seeds of synthetic random logs that exercise the reject
  paths (coherence inversions, stale reads, torn atomics) far more
  densely than the simulator ever would.
"""

import random

import pytest

from tests.consistency.legacy_tso import legacy_check_tso
from repro.common.errors import TSOViolationError
from repro.common.types import CommitMode
from repro.conform.differential import conform_params
from repro.conform.model import to_litmus
from repro.conform.runner import load_corpus, tier1_slice
from repro.consistency.execution import ExecutionLog
from repro.consistency.litmus import litmus_traces
from repro.consistency.models import check_execution
from repro.sim.system import MulticoreSystem
from repro.workloads.trace import AddressSpace

ADDRS = (0x40, 0x80, 0xC0)


def simulate(test, mode=CommitMode.OOO_WB, extra_delays=()):
    params = conform_params(test, mode=mode)
    space = AddressSpace(params.cache.line_bytes)
    traces, __, __ = litmus_traces(test=to_litmus(test), space=space,
                                   extra_delays=extra_delays)
    system = MulticoreSystem(params)
    system.load_program(traces)
    return system.run().log


def verdict(checker, log):
    try:
        checker(log)
        return None
    except TSOViolationError as exc:
        return type(exc)


def test_engine_matches_legacy_on_corpus_sims():
    """Tier-1 slice, protected mode: both checkers accept every log."""
    for test in tier1_slice(load_corpus()):
        log = simulate(test)
        assert verdict(legacy_check_tso, log) is None, test.name
        assert verdict(check_execution, log) is None, test.name


def test_engine_matches_legacy_on_unsafe_executions():
    """OOO_UNSAFE produces genuinely broken logs: the verdicts must
    still agree, and at least one rejection must be exercised."""
    tests = {t.name: t for t in load_corpus()}
    rejected = 0
    for name in ("CORR3+po+slow", "CORR+po", "MP+po+slow",
                 "CORR4+slow+po+po"):
        for delays in ((), (0, 40), (40, 0)):
            log = simulate(tests[name], mode=CommitMode.OOO_UNSAFE,
                           extra_delays=delays)
            old = verdict(legacy_check_tso, log)
            new = verdict(check_execution, log)
            assert (old is None) == (new is None), (name, delays)
            if old is not None:
                rejected += 1
                assert new is TSOViolationError
    assert rejected, "no unsafe execution tripped the checkers"


def random_log(rng):
    """A synthetic execution: per-core streams with a randomly shuffled
    global perform order and (mostly fresh, sometimes stale) reads."""
    log = ExecutionLog()
    ops = []
    for core in range(rng.randrange(2, 5)):
        for seq in range(1, rng.randrange(2, 7)):
            ops.append((core, seq, rng.choice(ADDRS),
                        rng.choice(["ld", "ld", "st", "st", "at"])))
    if rng.random() < 0.5:
        rng.shuffle(ops)  # perform order inconsistent with po
    for core, seq, addr, kind in ops:
        co = log.coherence_order.get(addr, [])
        if kind == "st":
            version = log.new_version(core, seq, addr, rng.randrange(64))
            log.store_performed(version)
            log.record_store(core, seq, addr, version, cycle=seq)
        elif kind == "at":
            stale = co and rng.random() < 0.25
            read = rng.choice(co) if stale else (co[-1] if co else 0)
            version = log.new_version(core, seq, addr, rng.randrange(64))
            log.store_performed(version)
            log.record_atomic(core, seq, addr, read, version, cycle=seq)
        else:
            stale = co and rng.random() < 0.3
            read = rng.choice(co) if stale else (co[-1] if co else 0)
            log.record_load(core, seq, addr, read, cycle=seq)
    return log


def test_engine_matches_legacy_on_random_logs():
    """200-seed property sweep: verdicts agree on every synthetic log,
    and both accept and reject classes are exercised."""
    accepts = rejects = 0
    for seed in range(200):
        log = random_log(random.Random(seed))
        old = verdict(legacy_check_tso, log)
        new = verdict(check_execution, log)
        assert (old is None) == (new is None), seed
        if old is None:
            accepts += 1
        else:
            rejects += 1
    assert accepts > 10 and rejects > 10, (accepts, rejects)


def test_full_corpus_equivalence_when_slow(slow):
    """--slow / nightly: every corpus test's simulated log, both
    checkers, byte-for-byte verdict agreement."""
    if not slow:
        pytest.skip("slow battery only")
    for test in load_corpus():
        log = simulate(test)
        assert verdict(legacy_check_tso, log) is None, test.name
        assert verdict(check_execution, log) is None, test.name
