"""Directed unit tests for the relation builders and cycle witness.

Each relation (po, rf, co, fr) is probed on hand-built
:class:`ExecutionLog` instances with known edge sets, including the two
historically fiddly corners: reads of the initial contents (version 0,
no rf edge, fr to the address's *first* writer) and events committing
on the same cycle (po must follow ``seq``, never ``cycle``).
"""

import random

from repro.consistency.execution import ExecutionLog
from repro.consistency.relations import (RfEdge, build_relations,
                                         describe_cycle, find_cycle,
                                         has_cycle, is_read, is_write)

A, B = 0x40, 0x80  # two line-distinct byte addresses


def make_store(log, core, seq, addr, value, cycle=0):
    version = log.new_version(core, seq, addr, value)
    log.store_performed(version)
    log.record_store(core, seq, addr, version, cycle)
    return version


def test_po_is_per_core_and_ordered_by_seq():
    log = ExecutionLog()
    # Insert out of order and with inverted cycle numbers: only seq may
    # decide program order.
    log.record_load(core=1, seq=2, addr=A, version=0, cycle=5)
    log.record_load(core=0, seq=1, addr=A, version=0, cycle=90)
    log.record_load(core=1, seq=1, addr=B, version=0, cycle=80)
    log.record_load(core=0, seq=2, addr=B, version=0, cycle=10)
    rel = build_relations(log)
    assert sorted(rel.po) == [0, 1]
    for core in (0, 1):
        seqs = [rel.events[i].seq for i in rel.po[core]]
        assert seqs == sorted(seqs), core


def test_same_cycle_commit_keeps_seq_order():
    """Two accesses of one core retiring on the same cycle are still
    po-ordered by their sequence numbers."""
    log = ExecutionLog()
    log.record_load(core=0, seq=7, addr=A, version=0, cycle=33)
    log.record_load(core=0, seq=6, addr=B, version=0, cycle=33)
    rel = build_relations(log)
    assert [rel.events[i].seq for i in rel.po[0]] == [6, 7]


def test_from_init_read_has_no_rf_but_fr_to_first_writer():
    log = ExecutionLog()
    log.record_load(core=0, seq=1, addr=A, version=0, cycle=1)
    store = make_store(log, core=1, seq=1, addr=A, value=9, cycle=2)
    rel = build_relations(log)
    assert rel.rf == []  # version 0 has no writing event
    (reader, successor), = rel.fr
    assert rel.events[reader].kind == "ld"
    assert rel.events[successor].version_written == store


def test_from_init_read_with_no_writer_has_no_fr():
    log = ExecutionLog()
    log.record_load(core=0, seq=1, addr=A, version=0, cycle=1)
    rel = build_relations(log)
    assert rel.rf == [] and rel.fr == []


def test_rf_tags_internal_vs_external():
    log = ExecutionLog()
    v = make_store(log, core=0, seq=1, addr=A, value=1)
    log.record_load(core=0, seq=2, addr=A, version=v, cycle=2,
                    forwarded=True)
    log.record_load(core=1, seq=1, addr=A, version=v, cycle=3)
    rel = build_relations(log)
    writer = rel.po[0][0]
    assert set(rel.rf) == {
        RfEdge(writer, rel.po[0][1], internal=True),
        RfEdge(writer, rel.po[1][0], internal=False),
    }
    assert rel.rf_edges() == [(writer, rel.po[0][1]),
                              (writer, rel.po[1][0])]
    assert rel.rf_edges(external_only=True) == [(writer, rel.po[1][0])]


def test_co_is_adjacent_edges_in_perform_order():
    log = ExecutionLog()
    v1 = make_store(log, core=0, seq=1, addr=A, value=1)
    v2 = make_store(log, core=1, seq=1, addr=A, value=2)
    v3 = make_store(log, core=0, seq=2, addr=A, value=3)
    make_store(log, core=1, seq=2, addr=B, value=4)
    rel = build_relations(log)
    edges = rel.co[A]
    assert len(edges) == 2 and len(rel.co[B]) == 0
    chain = [rel.events[edges[0][0]].version_written,
             rel.events[edges[0][1]].version_written,
             rel.events[edges[1][1]].version_written]
    assert chain == [v1, v2, v3]
    assert edges[0][1] == edges[1][0]  # adjacency chains through v2


def test_fr_points_to_co_successor_only():
    log = ExecutionLog()
    v1 = make_store(log, core=0, seq=1, addr=A, value=1)
    v2 = make_store(log, core=0, seq=2, addr=A, value=2)
    log.record_load(core=1, seq=1, addr=A, version=v1, cycle=4)
    rel = build_relations(log)
    (reader, successor), = rel.fr
    assert rel.events[reader].core == 1
    # fr targets the *immediate* co-successor of v1, i.e. v2's store.
    assert rel.events[successor].version_written == v2


def test_atomic_is_both_read_and_write():
    log = ExecutionLog()
    v = log.new_version(0, 1, A, 5)
    log.store_performed(v)
    log.record_atomic(core=0, seq=1, addr=A, version_read=0,
                      version_written=v, cycle=1)
    rel = build_relations(log)
    event = rel.events[0]
    assert is_read(event) and is_write(event)
    assert rel.writer_of[v] == 0


# --------------------------------------------------------------- find_cycle
def _assert_genuine(cycle, adjacency):
    for src, dst in zip(cycle, cycle[1:] + cycle[:1]):
        assert dst in adjacency.get(src, set()), (cycle, src, dst)


def test_find_cycle_none_on_dag():
    adjacency = {0: {1}, 1: {2}, 2: {3}}
    assert not has_cycle(4, adjacency)
    assert find_cycle(4, adjacency) is None


def test_find_cycle_minimal_and_rotated():
    # A 4-cycle and a 2-cycle share node 3: the witness must be the
    # 2-cycle, rotated to start at its smallest node.
    adjacency = {0: {1}, 1: {2}, 2: {3}, 3: {0, 4}, 4: {3}}
    cycle = find_cycle(5, adjacency)
    assert cycle == [3, 4]
    _assert_genuine(cycle, adjacency)


def test_find_cycle_lexicographic_tiebreak():
    # Two disjoint 2-cycles: the lexicographically smaller one wins.
    adjacency = {5: {6}, 6: {5}, 1: {2}, 2: {1}}
    assert find_cycle(7, adjacency) == [1, 2]


def test_find_cycle_independent_of_insertion_order():
    """Regression: the witness used to depend on dict/set iteration
    order; it must be a pure function of the edge set."""
    edges = [(0, 1), (1, 2), (2, 0), (2, 4), (4, 2), (3, 0), (1, 3)]
    forward = {}
    for src, dst in edges:
        forward.setdefault(src, set()).add(dst)
    backward = {}
    for src, dst in reversed(edges):
        backward.setdefault(src, set()).add(dst)
    assert find_cycle(5, forward) == find_cycle(5, backward) == [2, 4]


def test_find_cycle_randomised_minimality_and_determinism():
    rng = random.Random(20260807)
    for _ in range(120):
        n = rng.randrange(2, 9)
        edges = {(rng.randrange(n), rng.randrange(n))
                 for _ in range(rng.randrange(1, 14))}
        edges = {(s, d) for s, d in edges if s != d}
        adjacency = {}
        for src, dst in edges:
            adjacency.setdefault(src, set()).add(dst)
        shuffled = list(edges)
        rng.shuffle(shuffled)
        other = {}
        for src, dst in shuffled:
            other.setdefault(src, set()).add(dst)
        cycle = find_cycle(n, adjacency)
        assert cycle == find_cycle(n, other)
        if cycle is None:
            assert not has_cycle(n, adjacency)
            continue
        _assert_genuine(cycle, adjacency)
        # Brute-force minimal length via BFS from every edge.
        best = min(len(c) for c in _all_shortest_cycles(n, adjacency))
        assert len(cycle) == best


def _all_shortest_cycles(n, adjacency):
    from collections import deque

    cycles = []
    for start in range(n):
        dist = {start: 0}
        parent = {start: None}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for dst in adjacency.get(node, ()):
                if dst == start:
                    path = [node]
                    while parent[path[-1]] is not None:
                        path.append(parent[path[-1]])
                    cycles.append(list(reversed(path)))
                elif dst not in dist:
                    dist[dst] = dist[node] + 1
                    parent[dst] = node
                    queue.append(dst)
    return cycles or [[]]


def test_describe_cycle_mentions_each_event():
    log = ExecutionLog()
    make_store(log, core=0, seq=1, addr=A, value=1)
    log.record_load(core=1, seq=1, addr=A, version=0, cycle=2)
    rel = build_relations(log)
    text = describe_cycle(rel.events, [0, 1])
    assert "st c0#1" in text and "ld c1#1" in text
