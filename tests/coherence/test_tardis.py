"""Directed tests for the tardis timestamp-coherence backend.

Each test drives the protocol harness (``backend="tardis"``) through
one mechanism of the Yu & Devadas design: lease-bounded stale reads
with zero invalidation traffic, lease expiry forcing renewal, owner
recalls on ownership transfer, directory-side timestamp bumping, the
``_ts_memory`` ledger that keeps evicted leases ordered against future
writes, and the exponential lease escalation that breaks renewal
livelock.
"""

import pytest

from repro.common.errors import ProtocolError
from repro.common.params import CacheParams
from repro.common.types import CacheState, DirState, MsgType

from .conftest import ProtocolHarness

ADDR = 0x1000
ADDR_B = 0x2000


@pytest.fixture
def th():
    return ProtocolHarness(backend="tardis")


def test_write_sends_no_invalidations_and_stale_read_is_lease_bounded(th):
    h = th
    assert h.read_blocking(0, ADDR)["value"] == (0, 0)
    h.write_blocking(1, ADDR, version=1, value=42)
    h.run()
    # No invalidation reached core 0, and no recall was needed: the
    # directory held the line in S, so ownership was granted directly.
    assert h.invalidations[0] == []
    assert h.stats.value("tardis.recalls") == 0
    # Core 0's leased copy is still usable: the re-read hits locally
    # and returns the OLD value — a legal (TSO-reorderable) stale read,
    # ordered before the write because its timestamp is.
    out = h.read_blocking(0, ADDR)
    assert out["status"] == "hit"
    assert out["value"] == (0, 0)


def test_lease_expiry_fires_hook_and_renewal_fetches_fresh_data(th):
    h = th
    line = h.line(ADDR)
    h.read_blocking(0, ADDR)                      # lease on ADDR, rts=10
    h.write_blocking(1, ADDR, version=1, value=42)  # wts jumps past the lease
    h.run()
    h.write_blocking(1, ADDR_B, version=1, value=7)  # wts(B) = core 1's pts
    h.run()
    # Core 0 reads B: the directory recalls core 1's copy, and binding
    # at B's write timestamp advances core 0 past its ADDR lease — the
    # expiry sweep fires the synthetic invalidation hook for ADDR.
    out = h.read_blocking(0, ADDR_B)
    assert out["value"] == (1, 7)
    assert line in h.invalidations[0]
    assert h.stats.value("tardis.lease_expiries") >= 1
    # The expired copy is still resident: the next read self-renews,
    # and since the directory's wts moved, the renewal carries data.
    out = h.read_blocking(0, ADDR)
    assert out["value"] == (1, 42)
    assert h.stats.value("tardis.renews_sent") == 1
    assert h.stats.value("tardis.renewals_with_data") == 1


def test_recall_downgrades_owner_and_extends_its_lease(th):
    h = th
    line = h.line(ADDR)
    h.write_blocking(0, ADDR, version=1, value=7)
    h.run()
    out = h.read_blocking(1, ADDR)
    assert out["value"] == (1, 7)
    assert h.stats.value("tardis.recalls") == 1
    # The recalled owner keeps a leased shared copy (no invalidation).
    assert h.caches[0].line_state(line) is CacheState.S
    entry = h.home_dir(ADDR).entry(line)
    assert entry.state is DirState.S
    # The directory merged the owner's timestamps: the reported rts
    # covers the owner's extended lease, so the next writer's version
    # lands strictly after it.
    wts, rts = h.home_dir(ADDR).authoritative_ts(line)
    assert wts == 1
    assert rts >= wts + h.params.tardis_lease


def test_ownership_transfer_bumps_write_timestamp_past_all_leases(th):
    h = th
    line = h.line(ADDR)
    h.read_blocking(0, ADDR)
    h.read_blocking(1, ADDR)
    __, rts_before = h.home_dir(ADDR).authoritative_ts(line)
    h.write_blocking(2, ADDR, version=1, value=5)
    # The store's logical time is bumped past every lease the directory
    # ever granted — SWMR in timestamp order without invalidating the
    # readers' (still resident) copies.
    assert h.caches[2].line_entry(line).wts > rts_before
    assert h.invalidations[0] == [] and h.invalidations[1] == []


def test_ts_memory_preserves_lease_obligations_across_llc_eviction():
    params = CacheParams(llc_sets_per_bank=1, llc_ways=1)
    h = ProtocolHarness(backend="tardis", cache_params=params)
    line = h.line(0x000)
    h.read_blocking(0, 0x000)                     # line 0, bank 0
    __, rts_before = h.dirs[0].authoritative_ts(line)
    assert rts_before == params.tardis_lease
    h.read_blocking(1, 0x100)                     # line 4: same bank+set
    # The S entry spilled silently, but its timestamps persisted.
    assert h.dirs[0].entry(line) is None
    assert h.dirs[0].authoritative_ts(line) == (0, rts_before)
    # A writer re-fetching the line inherits the persisted rts, so its
    # store still lands after core 0's outstanding lease.
    h.write_blocking(2, 0x000, version=1, value=3)
    assert h.caches[2].line_entry(line).wts > rts_before
    # ... and core 0's leased copy stays usable until then.
    assert h.read_blocking(0, 0x000)["value"] == (0, 0)


def test_failed_renewals_escalate_the_requested_lease():
    h = ProtocolHarness(backend="tardis",
                        cache_params=CacheParams(tardis_lease=1))
    line = h.line(ADDR)
    h.read_blocking(0, ADDR)                      # rts = 1; bind puts pts = 1
    sent = []
    orig = h.caches[0]._send

    def spy(msg_type, dst, port, line_, **payload):
        sent.append((msg_type, dict(payload)))
        orig(msg_type, dst, port, line_, **payload)

    h.caches[0]._send = spy
    h.caches[0]._renew_fails[line] = 3            # three bounced renewals
    out = h.read_blocking(0, ADDR)                # expired: self-renew
    assert out["value"] == (0, 0)
    renews = [p for t, p in sent if t is MsgType.RENEW]
    assert renews and renews[0]["lease"] == 1 << 3
    # The directory honors the escalated ask: the granted lease is the
    # requested one, not the (smaller) configured default.
    assert h.caches[0].line_entry(line).rts >= renews[0]["pts"] + (1 << 3)


def test_store_without_ownership_and_deferred_ack_are_protocol_errors(th):
    h = th
    h.read_blocking(0, ADDR)                      # leased, not owned
    with pytest.raises(ProtocolError):
        h.caches[0].perform_store(ADDR, 1, 1)
    with pytest.raises(ProtocolError):
        h.caches[0].send_deferred_ack(h.line(ADDR))
