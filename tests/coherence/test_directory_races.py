"""Directory race handling: writebacks vs forwards, stale puts, queues."""

import pytest

from repro.common.types import CacheState, DirState, LineAddr, MsgType
from repro.network.message import Message

from .conftest import ProtocolHarness


def test_read_queued_behind_busy_write_is_served_after(harness):
    h = harness
    h.read_blocking(0, 0x1000)
    # Start a write and immediately a read from a third core, without
    # letting the network drain in between.
    grant = h.acquire_write(1, 0x1000)
    read = h.read(2, 0x1000)
    h.run()
    assert grant["granted"]
    assert read["value"] is not None


def test_two_concurrent_writers_serialize(harness):
    h = harness
    h.read_blocking(3, 0x1000)  # someone to invalidate
    g1 = h.acquire_write(0, 0x1000)
    g2 = h.acquire_write(1, 0x1000)
    h.run()
    assert g1["granted"] and g2["granted"]
    entry = h.home_dir(0x1000).entry(h.line(0x1000))
    assert entry.state is DirState.M
    assert entry.owner in (0, 1)


def test_writeback_races_forwarded_read(harness):
    """Owner evicts (PutM in flight) while a read is forwarded to it:
    the owner serves from its writeback buffer."""
    h = harness
    from repro.common.params import CacheParams

    small = ProtocolHarness(num_tiles=4, writers_block=True,
                            cache_params=CacheParams(l2_sets=1, l2_ways=2,
                                                     l1_sets=1, l1_ways=2))
    small.write_blocking(0, 0x1000, version=1, value=5)
    small.run()
    # Force core 0 to evict the dirty line by filling its only set,
    # while core 1's read races with the writeback.
    read = small.read(1, 0x1000)
    small.read(0, 0x1040)
    small.read(0, 0x1080)
    small.run()
    assert read["value"] == (1, 5)


def test_stale_putm_gets_wbacked(harness):
    """A PutM from a core that is no longer owner is acknowledged and
    ignored (the data already moved via the forward)."""
    h = harness
    h.write_blocking(0, 0x1000, version=1, value=9)
    line = h.line(0x1000)
    h.run()
    # Move ownership to core 1 through a real write.
    h.write_blocking(1, 0x1000, version=2, value=10)
    h.run()
    # Now core 0 (no longer owner) sends a stale PutM by hand.
    from repro.mem.line_data import LineData

    stale = LineData()
    stale.write(0, 1, 9)
    wb = h.caches[0].mshrs.allocate(line, "writeback")
    wb.data = stale
    h.caches[0]._send(MsgType.PUTM, h.caches[0].home_of(line), "llc", line,
                      data=stale)
    h.run()
    assert h.caches[0].mshrs.get(line) is None  # WbAck freed the MSHR
    entry = h.home_dir(0x1000).entry(line)
    assert entry.owner == 1
    out = h.read_blocking(2, 0x1000)
    assert out["value"] == (2, 10)  # stale data did not clobber


@pytest.mark.baseline_only
def test_puts_removes_sharer(base_harness):
    h = base_harness
    h.read_blocking(0, 0x1000)
    h.read_blocking(1, 0x1000)
    line = h.line(0x1000)
    h.caches[0]._send(MsgType.PUTS, h.caches[0].home_of(line), "llc", line)
    h.run()
    entry = h.home_dir(0x1000).entry(line)
    assert 0 not in entry.sharers
    assert 1 in entry.sharers


def test_reader_rerequest_after_silent_eviction(harness):
    """Dir thinks we share the line; a repeat GetS must still work."""
    h = harness
    h.read_blocking(0, 0x1000)
    h.read_blocking(1, 0x1000)
    h.caches[0]._drop_line(h.line(0x1000))  # silent eviction
    out = h.read_blocking(0, 0x1000)  # re-request as a "sharer"
    assert out["value"] == (0, 0)
    assert h.caches[0].line_state(h.line(0x1000)) is not CacheState.I


def test_interleaved_lines_use_distinct_banks(harness):
    h = harness
    assert h.home_dir(0x1000) is not h.home_dir(0x1040)
    h.read_blocking(0, 0x1000)
    h.read_blocking(0, 0x1040)
    assert h.home_dir(0x1000).entry(h.line(0x1000)) is not None
    assert h.home_dir(0x1040).entry(h.line(0x1040)) is not None


def test_puts_emptied_sharer_list_grants_consistent_exclusive():
    """Regression: with non-silent evictions, PutS can empty an S
    entry's sharer list; the next read must be granted exclusively in a
    way the DIRECTORY and the CACHE agree on (the dir once recorded an
    owner while the cache installed S — a later FwdGetS then found no
    owner)."""
    from repro.common.params import CacheParams
    from repro.common.types import DirState

    h = ProtocolHarness(
        num_tiles=4, writers_block=True,
        cache_params=CacheParams(silent_shared_evictions=False))
    h.read_blocking(0, 0x1000)
    h.read_blocking(1, 0x1000)  # S with sharers {0, 1}
    line = h.line(0x1000)
    for tile in (0, 1):
        h.caches[tile]._evict(line)  # non-silent: PutS removes sharers
    h.run()
    entry = h.home_dir(0x1000).entry(line)
    assert entry.state is DirState.S and not entry.sharers
    # Fresh read: must end exclusive at BOTH the cache and the dir.
    out = h.read_blocking(2, 0x1000)
    assert out["value"] == (0, 0)
    assert h.caches[2].line_state(line) in (CacheState.E, CacheState.M)
    assert entry.state is DirState.M and entry.owner == 2
    # And a forwarded read afterwards works (this used to crash).
    out2 = h.read_blocking(3, 0x1000)
    assert out2["value"] == (0, 0)
