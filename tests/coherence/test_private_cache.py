"""Private cache controller specifics: writebacks, races, residency."""

import pytest

from repro.common.errors import ProtocolError
from repro.common.params import CacheParams
from repro.common.types import CacheState, LineAddr

from .conftest import ProtocolHarness

SMALL_PRIVATE = CacheParams(l2_sets=1, l2_ways=2, l1_sets=1, l1_ways=2)


@pytest.fixture
def small():
    """Two-way private caches: easy to force evictions."""
    return ProtocolHarness(num_tiles=4, writers_block=True,
                           cache_params=SMALL_PRIVATE)


def fill_line(h, tile, addr, value=None, version=1):
    if value is None:
        h.read_blocking(tile, addr)
    else:
        h.write_blocking(tile, addr, version, value)
        h.run()


def test_dirty_eviction_writes_back(small):
    h = small
    fill_line(h, 0, 0x1000, value=9)  # M
    # Two more lines in the same (only) set force the dirty line out.
    fill_line(h, 0, 0x1040)
    fill_line(h, 0, 0x1080)
    h.run()
    assert h.caches[0].line_state(h.line(0x1000)) is CacheState.I
    assert h.stats.value("cache.writebacks") == 1
    # The dirty data survives and is served to another core.
    out = h.read_blocking(1, 0x1000)
    assert out["value"] == (1, 9)


def test_clean_shared_eviction_is_silent_by_default(small):
    h = small
    fill_line(h, 0, 0x1000)
    fill_line(h, 1, 0x1000)  # both sharers now (S state at core 0)
    fill_line(h, 0, 0x1040)
    fill_line(h, 0, 0x1080)
    h.run()
    # Directory still believes core 0 shares the line (silent eviction).
    entry = h.home_dir(0x1000).entry(h.line(0x1000))
    assert 0 in entry.sharers
    # The eventual invalidation still reaches core 0 and is answered.
    grant = h.acquire_write(2, 0x1000)
    h.run()
    assert grant["granted"]
    assert h.line(0x1000) in h.invalidations[0]


def test_eviction_skips_locked_lines(small):
    """Paper §3.8: never evict a line under lockdown — the replacement
    picks another way."""
    h = small
    fill_line(h, 0, 0x1000)
    h.lockdowns[0].add(h.line(0x1000))
    fill_line(h, 0, 0x1040)
    fill_line(h, 0, 0x1080)  # would evict LRU 0x1000, but it is locked
    h.run()
    assert h.caches[0].line_state(h.line(0x1000)) is not CacheState.I
    h.lockdowns[0].clear()


def test_all_ways_locked_skips_caching_the_fill(small):
    h = small
    fill_line(h, 0, 0x1000)
    fill_line(h, 0, 0x1040)
    h.lockdowns[0].add(h.line(0x1000))
    h.lockdowns[0].add(h.line(0x1040))
    out = h.read_blocking(0, 0x1080)  # nowhere to install
    assert out["value"] == (0, 0)  # value still delivered
    assert h.caches[0].line_state(h.line(0x1080)) is CacheState.I
    h.lockdowns[0].clear()


def test_perform_store_requires_m_state(harness):
    h = harness
    h.read_blocking(0, 0x1000)
    h.read_blocking(1, 0x1000)  # S state at core 0 now
    with pytest.raises(ProtocolError):
        h.caches[0].perform_store(0x1000, 1, 5)


def test_write_request_chains_behind_outstanding_read(harness):
    h = harness
    read = h.read(0, 0x1000)
    grant = h.acquire_write(0, 0x1000)
    h.run()
    assert read["value"] is not None
    assert grant["granted"]
    assert h.caches[0].line_state(h.line(0x1000)) is CacheState.M


def test_two_grants_piggyback_one_write_mshr(harness):
    h = harness
    h.read_blocking(1, 0x1000)  # make core 0's write a real transaction
    g1 = h.acquire_write(0, 0x1000)
    g2 = h.acquire_write(0, 0x1008)  # same line
    h.run()
    assert g1["granted"] and g2["granted"]
    assert h.stats.value("dir.requests") == 2  # one GetS + one GetX


def test_atomic_rmw_on_owned_line(harness):
    h = harness
    h.write_blocking(0, 0x1000, version=1, value=5)
    old = h.caches[0].perform_atomic(0x1000, 2, 6)
    assert old == (1, 5)
    out = h.read_blocking(1, 0x1000)
    assert out["value"] == (2, 6)


def test_tearoff_data_never_installed(harness):
    h = harness
    h.read_blocking(0, 0x1000)
    h.lockdowns[0].add(h.line(0x1000))
    h.acquire_write(1, 0x1000)
    h.run()
    out = h.read_blocking(2, 0x1000)
    assert out["uncacheable"] is True
    # A second read misses again (the tear-off was use-once).
    before = h.stats.value("dir.uncacheable_reads")
    out2 = h.read_blocking(2, 0x1000)
    assert out2["uncacheable"] is True
    assert h.stats.value("dir.uncacheable_reads") == before + 1
    h.release_lockdown(0, h.line(0x1000))
    h.run()
