"""Base protocol behavior: reads, writes, invalidations, writebacks.

Backend-parametric via ``base_harness``: value-propagation tests run on
every registered backend; tests pinned to MESI line states or
invalidation traffic are ``baseline_only``.
"""

import pytest

from repro.common.types import CacheState, DirState

baseline_only = pytest.mark.baseline_only


@baseline_only
def test_cold_read_grants_exclusive(base_harness):
    h = base_harness
    out = h.read_blocking(0, 0x1000)
    assert out["value"] == (0, 0)
    assert not out["uncacheable"]
    line = h.line(0x1000)
    assert h.caches[0].line_state(line) is CacheState.E
    entry = h.home_dir(0x1000).entry(line)
    assert entry.state is DirState.M
    assert entry.owner == 0


@baseline_only
def test_second_reader_makes_both_sharers(base_harness):
    h = base_harness
    h.read_blocking(0, 0x1000)
    out = h.read_blocking(1, 0x1000)
    assert out["value"] == (0, 0)
    line = h.line(0x1000)
    assert h.caches[0].line_state(line) is CacheState.S
    assert h.caches[1].line_state(line) is CacheState.S
    entry = h.home_dir(0x1000).entry(line)
    assert entry.state is DirState.S
    assert entry.sharers == {0, 1}


@baseline_only
def test_write_invalidates_sharers_and_transfers_value(base_harness):
    h = base_harness
    h.read_blocking(0, 0x1000)
    h.read_blocking(1, 0x1000)
    h.write_blocking(2, 0x1000, version=1, value=42)
    h.run()
    line = h.line(0x1000)
    assert h.caches[0].line_state(line) is CacheState.I
    assert h.caches[1].line_state(line) is CacheState.I
    assert h.caches[2].line_state(line) is CacheState.M
    assert line in h.invalidations[0]
    assert line in h.invalidations[1]
    # A later reader sees the new value via a 3-hop read.
    out = h.read_blocking(3, 0x1000)
    assert out["value"] == (1, 42)


@baseline_only
def test_read_after_write_downgrades_owner(base_harness):
    h = base_harness
    h.write_blocking(0, 0x1000, version=1, value=7)
    out = h.read_blocking(1, 0x1000)
    assert out["value"] == (1, 7)
    line = h.line(0x1000)
    assert h.caches[0].line_state(line) is CacheState.S
    entry = h.home_dir(0x1000).entry(line)
    assert entry.state is DirState.S
    assert entry.sharers == {0, 1}


@baseline_only
def test_upgrade_from_shared(base_harness):
    h = base_harness
    h.read_blocking(0, 0x1000)
    h.read_blocking(1, 0x1000)
    # Core 1 upgrades: invalidates core 0, keeps its data.
    h.write_blocking(1, 0x1000, version=1, value=9)
    line = h.line(0x1000)
    assert h.caches[1].line_state(line) is CacheState.M
    assert h.caches[0].line_state(line) is CacheState.I


@baseline_only
def test_silent_store_upgrade_from_exclusive(base_harness):
    h = base_harness
    h.read_blocking(0, 0x1000)  # E state
    out = h.acquire_write(0, 0x1000)
    assert out["granted"]  # no transaction needed: silent E->M
    line = h.line(0x1000)
    assert h.caches[0].line_state(line) is CacheState.M


def test_writer_to_writer_transfer(base_harness):
    h = base_harness
    h.write_blocking(0, 0x1000, version=1, value=1)
    h.write_blocking(1, 0x1000, version=2, value=2)
    out = h.read_blocking(2, 0x1000)
    assert out["value"] == (2, 2)


def test_write_to_word_preserves_other_words(base_harness):
    h = base_harness
    h.write_blocking(0, 0x1000, version=1, value=1)
    h.write_blocking(1, 0x1008, version=2, value=2)  # same line, +8
    assert h.read_blocking(2, 0x1000)["value"] == (1, 1)
    assert h.read_blocking(2, 0x1008)["value"] == (2, 2)


def test_read_piggybacks_on_outstanding_read(base_harness):
    h = base_harness
    first = h.read(0, 0x1000)
    second = h.read(0, 0x1008)  # same line, while miss outstanding
    assert second["status"] == "miss"
    h.run()
    assert first["value"] == (0, 0)
    assert second["value"] == (0, 0)
    assert h.stats.value("dir.requests") == 1  # one GetS total


def test_load_piggybacks_on_write_mshr(base_harness):
    h = base_harness
    grant = h.acquire_write(0, 0x1000)
    load = h.read(0, 0x1000)
    assert load["status"] == "miss"
    h.run()
    assert grant["granted"]
    assert load["value"] == (0, 0)
