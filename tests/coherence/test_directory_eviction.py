"""Directory/LLC evictions and the §3.5.1 safe-passage rules.

These tests shrink the LLC to one set x two ways per bank so directory
entries actually get evicted, and verify: recall invalidations, the
eviction buffer parking WritersBlock victims, and the uncacheable
fallback when the eviction buffer is exhausted.
"""

import pytest

from repro.common.params import CacheParams
from repro.common.types import CacheState, DirState

from .conftest import ProtocolHarness

TINY_LLC = CacheParams(llc_sets_per_bank=1, llc_ways=2, dir_eviction_buffer=2)


@pytest.fixture
def tiny():
    return ProtocolHarness(num_tiles=4, writers_block=True,
                           cache_params=TINY_LLC)


def bank0_addr(i):
    """i-th distinct line homed at bank 0 (4 tiles: line % 4 == 0)."""
    return (4 * i) * 64


def test_recall_invalidates_sharers(tiny):
    h = tiny
    # Fill bank 0's single set (2 ways) and force an eviction.
    h.read_blocking(1, bank0_addr(0))
    h.read_blocking(1, bank0_addr(1))
    h.read_blocking(1, bank0_addr(2))  # evicts the LRU entry
    assert h.stats.value("dir.llc_evictions") == 1
    # The recall invalidated the sharer's copy.
    states = [h.caches[1].line_state(h.line(bank0_addr(i))) for i in range(3)]
    assert states.count(CacheState.I) == 1
    # Evicted line is re-fetchable with correct (initial) data.
    evicted = states.index(CacheState.I)
    out = h.read_blocking(2, bank0_addr(evicted))
    assert out["value"] == (0, 0)


def test_recall_preserves_dirty_data_via_memory(tiny):
    h = tiny
    h.write_blocking(1, bank0_addr(0), version=1, value=11)
    h.run()
    h.read_blocking(1, bank0_addr(1))
    h.read_blocking(1, bank0_addr(2))  # evict one of them
    h.run()
    # Whichever was evicted, its data must survive in memory.
    out = h.read_blocking(2, bank0_addr(0))
    assert out["value"] == (1, 11)


def test_eviction_of_locked_line_parks_in_eviction_buffer(tiny):
    """Paper §3.5.1: the WritersBlock-bound victim moves aside into the
    eviction buffer so the fill proceeds immediately."""
    h = tiny
    addr = bank0_addr(0)
    h.read_blocking(1, addr)
    h.lockdowns[1].add(h.line(addr))
    # Two more fills: the locked line's recall Nacks, parking it.
    h.read_blocking(2, bank0_addr(1))
    h.read_blocking(2, bank0_addr(2))
    h.run()
    bank = h.dirs[0]
    assert bank.evicting_entry(h.line(addr)) is not None
    # The new fills both completed as cacheable reads (no deadlock).
    assert h.caches[2].line_state(h.line(bank0_addr(1))) is not CacheState.I
    assert h.caches[2].line_state(h.line(bank0_addr(2))) is not CacheState.I
    # Releasing the lockdown completes the parked eviction.
    h.release_lockdown(1, h.line(addr))
    h.run()
    assert bank.evicting_entry(h.line(addr)) is None


def test_read_of_parked_line_serves_uncacheable(tiny):
    h = tiny
    addr = bank0_addr(0)
    h.write_blocking(1, addr, version=1, value=33)
    h.run()
    h.lockdowns[1].add(h.line(addr))
    h.read_blocking(2, bank0_addr(1))
    h.read_blocking(2, bank0_addr(2))  # forces addr's entry out
    h.run()
    assert h.dirs[0].evicting_entry(h.line(addr)) is not None
    # A read for the mid-eviction line gets tear-off data (old value).
    out = h.read_blocking(3, addr)
    assert out["value"] == (1, 33)
    assert out["uncacheable"] is True
    h.release_lockdown(1, h.line(addr))
    h.run()


def test_write_to_parked_line_waits_for_eviction(tiny):
    h = tiny
    addr = bank0_addr(0)
    h.read_blocking(1, addr)
    h.lockdowns[1].add(h.line(addr))
    h.read_blocking(2, bank0_addr(1))
    h.read_blocking(2, bank0_addr(2))
    h.run()
    grant = h.acquire_write(3, addr)
    h.run()
    assert not grant["granted"]  # waits behind the parked eviction
    h.release_lockdown(1, h.line(addr))
    h.run()
    assert grant["granted"]


def test_eviction_buffer_exhaustion_falls_back_to_uncacheable(tiny):
    """When no directory entry can be claimed, reads become uncacheable
    transactions straight from memory (paper §3.5.1 last resort)."""
    h = tiny
    # Park two locked lines (fills the 2-entry eviction buffer) while
    # both ways hold further locked lines.
    for i in range(4):
        h.read_blocking(1, bank0_addr(i))
        h.lockdowns[1].add(h.line(bank0_addr(i)))
    h.run()
    assert len(h.dirs[0]._evicting) == 2
    # Now every way is locked and the buffer is full: a fresh read
    # cannot allocate anywhere -> uncacheable service from memory.
    out = h.read_blocking(2, bank0_addr(7))
    assert out["value"] == (0, 0)
    assert out["uncacheable"] is True
    assert h.stats.value("dir.uncacheable_due_to_eviction") >= 1
    for i in range(4):
        h.release_lockdown(1, h.line(bank0_addr(i)))
    h.run()
