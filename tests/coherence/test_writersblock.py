"""WritersBlock protocol: Nacks, blocked writes, tear-off reads,
deferred acks (paper §3.3, §3.4, Figures 3 and 4)."""

from repro.common.types import CacheState, DirState


def setup_lockdown_on_sharer(h, addr=0x1000, sharer=0):
    """Sharer caches the line and holds a lockdown on it."""
    h.read_blocking(sharer, addr)
    h.lockdowns[sharer].add(h.line(addr))


def test_invalidation_hitting_lockdown_blocks_the_write(harness):
    h = harness
    setup_lockdown_on_sharer(h)
    line = h.line(0x1000)
    grant = h.acquire_write(1, 0x1000)
    h.run()
    # The write must NOT have been granted: the Nack put the directory
    # into WritersBlock and the ack is deferred.
    assert not grant["granted"]
    entry = h.home_dir(0x1000).entry(line)
    assert entry.state is DirState.WRITERS_BLOCK
    assert h.stats.value("cache.nacks_sent") == 1
    assert h.stats.value("dir.writersblock_entered") == 1
    # Releasing the lockdown sends the deferred ack via the directory.
    h.release_lockdown(0, line)
    h.run()
    assert grant["granted"]
    assert entry.state is DirState.M
    assert entry.owner == 1


def test_write_without_lockdown_is_unchanged(harness):
    h = harness
    h.read_blocking(0, 0x1000)  # sharer, no lockdown
    grant = h.acquire_write(1, 0x1000)
    h.run()
    assert grant["granted"]
    assert h.stats.value("cache.nacks_sent") == 0
    assert h.stats.value("dir.writersblock_entered") == 0


def test_reads_during_writersblock_get_uncacheable_tearoff(harness):
    h = harness
    h.write_blocking(3, 0x1000, version=1, value=5)  # old value = 5
    h.read_blocking(0, 0x1000)
    h.lockdowns[0].add(h.line(0x1000))
    grant = h.acquire_write(1, 0x1000)
    h.run()
    assert not grant["granted"]
    # A new reader catches the write midway: it must see the OLD value,
    # as an uncacheable use-once copy (paper Figure 4).
    out = h.read_blocking(2, 0x1000)
    assert out["value"] == (1, 5)
    assert out["uncacheable"] is True
    assert h.caches[2].line_state(h.line(0x1000)) is CacheState.I
    assert h.stats.value("dir.uncacheable_reads") == 1
    # The tear-off reader is NOT registered: no new invalidation needed.
    h.release_lockdown(0, h.line(0x1000))
    h.run()
    assert grant["granted"]


def test_unordered_load_cannot_use_tearoff(harness):
    h = harness
    setup_lockdown_on_sharer(h)
    grant = h.acquire_write(1, 0x1000)
    h.run()
    out = h.read_blocking(2, 0x1000, ordered=False)
    assert out["value"] is None  # not performed
    assert out["retries"] == 1  # must retry once it becomes the SoS
    assert h.stats.value("cache.tearoffs_unusable") == 1


def test_owner_nack_parks_data_at_directory(harness):
    """Paper Fig 3.B step 3: invalidating an E/M copy under lockdown
    sends Nack+Data to the directory and Data to the writer, so
    tear-off readers have somewhere to read from."""
    h = harness
    h.write_blocking(0, 0x1000, version=1, value=77)  # core 0 owns in M
    h.lockdowns[0].add(h.line(0x1000))
    grant = h.acquire_write(1, 0x1000)
    h.run()
    assert not grant["granted"]
    entry = h.home_dir(0x1000).entry(h.line(0x1000))
    assert entry.state is DirState.WRITERS_BLOCK
    # The directory can serve the parked (old) data to readers.
    out = h.read_blocking(2, 0x1000)
    assert out["value"] == (1, 77)
    assert out["uncacheable"] is True
    h.release_lockdown(0, h.line(0x1000))
    h.run()
    assert grant["granted"]


def test_second_writer_queues_behind_writersblock(harness):
    h = harness
    setup_lockdown_on_sharer(h)
    first = h.acquire_write(1, 0x1000)
    h.run()
    second = h.acquire_write(2, 0x1000)
    h.run()
    assert not first["granted"]
    assert not second["granted"]
    assert h.stats.value("dir.writes_blocked") >= 1
    h.release_lockdown(0, h.line(0x1000))
    h.run()
    assert first["granted"]
    assert second["granted"]
    # Final owner is the second writer (FIFO service order).
    entry = h.home_dir(0x1000).entry(h.line(0x1000))
    assert entry.owner == 2


def test_blocked_hint_reaches_the_writer(harness):
    h = harness
    setup_lockdown_on_sharer(h)
    h.acquire_write(1, 0x1000)
    h.run()
    assert h.caches[1].write_blocked(h.line(0x1000))


def test_multiple_lockdowns_all_must_release(harness):
    h = harness
    h.read_blocking(0, 0x1000)
    h.read_blocking(2, 0x1000)
    h.lockdowns[0].add(h.line(0x1000))
    h.lockdowns[2].add(h.line(0x1000))
    grant = h.acquire_write(1, 0x1000)
    h.run()
    assert not grant["granted"]
    h.release_lockdown(0, h.line(0x1000))
    h.run()
    assert not grant["granted"]  # core 2 still holds a lockdown
    h.release_lockdown(2, h.line(0x1000))
    h.run()
    assert grant["granted"]


def test_mixed_lockdown_and_plain_sharers(harness):
    h = harness
    h.read_blocking(0, 0x1000)
    h.read_blocking(2, 0x1000)
    h.read_blocking(3, 0x1000)
    h.lockdowns[2].add(h.line(0x1000))
    grant = h.acquire_write(1, 0x1000)
    h.run()
    # Cores 0 and 3 acked straight to the writer; core 2 Nacked.
    assert not grant["granted"]
    h.release_lockdown(2, h.line(0x1000))
    h.run()
    assert grant["granted"]


def test_silent_eviction_invalidation_still_queried(harness):
    """Paper §3.8: with silent evictions an invalidation may find no
    cached line, but it must still query the LQ/LDT for lockdowns."""
    h = harness
    h.read_blocking(0, 0x1000)
    h.read_blocking(3, 0x1000)  # line now Shared at core 0
    # Silently drop the shared line but keep the (exported) lockdown.
    h.caches[0]._drop_line(h.line(0x1000))
    h.lockdowns[0].add(h.line(0x1000))
    grant = h.acquire_write(1, 0x1000)
    h.run()
    assert not grant["granted"]  # Nack despite no cached copy
    h.release_lockdown(0, h.line(0x1000))
    h.run()
    assert grant["granted"]


def test_sos_bypass_read_gets_tearoff_from_owner(harness):
    """An uncacheable (SoS bypass) read forwarded to an M owner returns
    a use-once snapshot without disturbing ownership."""
    h = harness
    h.write_blocking(0, 0x1000, version=1, value=3)
    out = h.read_blocking(1, 0x1000, sos=True, ordered=True)
    assert out["value"] == (1, 3)
    assert out["uncacheable"] is True
    assert h.caches[0].line_state(h.line(0x1000)) is CacheState.M
    entry = h.home_dir(0x1000).entry(h.line(0x1000))
    assert entry.owner == 0  # untouched


def test_writersblock_duration_recorded(harness):
    h = harness
    setup_lockdown_on_sharer(h)
    grant = h.acquire_write(1, 0x1000)
    h.run()
    assert not grant["granted"]
    h.release_lockdown(0, h.line(0x1000))
    h.run()
    assert grant["granted"]
    hist = h.stats.histogram_summaries().get("dir.writersblock_duration")
    assert hist is not None and hist["total"] == 1
    assert hist["mean"] > 0
