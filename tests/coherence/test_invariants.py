"""Coherence-invariant checker: passes clean systems, flags broken ones."""

import pytest

from repro.coherence.invariants import check_coherence
from repro.common.errors import ProtocolError
from repro.common.params import table6_system
from repro.common.types import CacheState, CommitMode
from repro.sim.system import MulticoreSystem
from repro.workloads.trace import AddressSpace, TraceBuilder


def quiesced_system():
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    system = MulticoreSystem(params)
    space = AddressSpace()
    x = space.new_var("x")
    y = space.new_var("y")
    traces = []
    for tid in range(4):
        t = TraceBuilder()
        t.load(t.reg(), x)
        if tid == 0:
            t.store(y, 5)
        t.load(t.reg(), y)
        traces.append(t.build())
    system.load_program(traces)
    system.run()
    return system, space


def test_clean_system_passes():
    system, __ = quiesced_system()
    check_coherence(system)


def test_double_owner_detected():
    system, space = quiesced_system()
    line = next(iter(line for line, __ in system.caches[0]._lines.items()))
    # Forge a second exclusive copy.
    entry0 = system.caches[0]._lines.lookup(line)
    entry0.state = CacheState.M
    for cache in system.caches[1:]:
        other = cache._lines.lookup(line)
        if other is not None:
            other.state = CacheState.M
            break
    else:
        pytest.skip("line not shared in this run")
    with pytest.raises(ProtocolError, match="exclusive|owner"):
        check_coherence(system)


def test_missing_sharer_detected():
    system, __ = quiesced_system()
    # Find a genuinely shared line and scrub one sharer from the dir.
    for bank in system.directories:
        for line, entry in bank._array.items():
            if len(entry.sharers) >= 2:
                entry.sharers.pop()
                with pytest.raises(ProtocolError, match="missing from"):
                    check_coherence(system)
                return
    pytest.skip("no multi-sharer line in this run")


def test_stale_data_detected():
    system, __ = quiesced_system()
    for cache in system.caches:
        for line, entry in cache._lines.items():
            if entry.state is CacheState.S:
                entry.data.write(0, 999, 123)  # corrupt the copy
                with pytest.raises(ProtocolError, match="differs"):
                    check_coherence(system)
                return
    pytest.skip("no shared copy in this run")


def test_leftover_mshr_detected():
    system, __ = quiesced_system()
    from repro.common.types import LineAddr

    system.caches[0].mshrs.allocate(LineAddr(0x999), "read")
    with pytest.raises(ProtocolError, match="MSHR"):
        check_coherence(system)
