"""Per-cycle invariant battery: randomized workloads, every backend.

:func:`repro.coherence.invariants.attach_probe` wires the backend's
cycle invariants into the simulator run loop, so every reachable
mid-transaction state of a randomized racy workload is checked — for
baseline that is single-writer exclusivity; for tardis it is timestamp
SWMR, ``wts <= rts`` monotonicity, and ``pts`` never moving backwards
(lease-expiry monotonicity); for rcp it is SWMR over stable *and*
speculative copies plus registration/data agreement for SPEC lines.
Quiescent invariants (the data-value invariant, drained machinery)
gate the end of each run.

The battery is backend-parametric via the ``backend_name`` fixture:
every registered backend runs the same seeds under its strongest sound
commit mode.  The negative tests inject violations (a corrupted
timestamp, an orphaned or dirtied SPEC copy, a duplicated owner) to
prove the hooks actually detect them.
"""

import pytest

from repro.coherence.invariants import attach_probe, check_coherence
from repro.common.errors import ProtocolError
from repro.common.params import table6_system
from repro.conform import default_mode_for
from repro.sim.system import MulticoreSystem
from repro.workloads.generators import random_shared_program
from repro.workloads.trace import AddressSpace, TraceBuilder

SEEDS = (3, 11, 42, 107, 2024)


def lower(program):
    """Lower abstract ``(kind, loc, payload)`` ops onto sim traces."""
    space = AddressSpace()
    addr = {}
    traces = []
    for ops in program:
        t = TraceBuilder()
        for kind, loc, payload in ops:
            if loc not in addr:
                addr[loc] = space.new_var(loc)
            if kind == "ld":
                t.load(t.reg(), addr[loc])
            elif kind == "st":
                t.store(addr[loc], payload)
            else:
                t.tas(t.reg(), addr[loc])
        traces.append(t.build())
    return traces


def probed_run(backend, seed, *, num_threads=3, max_ops=8):
    program = random_shared_program(seed, num_threads=num_threads,
                                    max_ops=max_ops)
    params = table6_system("SLM", num_cores=4,
                           commit_mode=default_mode_for(backend),
                           backend=backend)
    system = MulticoreSystem(params)
    checks = attach_probe(system)
    system.load_program(lower(program))
    system.run()
    return system, checks


@pytest.mark.parametrize("seed", SEEDS)
def test_invariants_hold_on_every_cycle_of_a_racy_workload(
        backend_name, seed):
    system, checks = probed_run(backend_name, seed)
    # The probe fired throughout the run (it raises on any violation).
    assert checks[0] > 0
    # Quiescent invariants: data-value agreement, timestamps ordered,
    # no residual transients, MSHRs drained.
    check_coherence(system)


def test_probe_detects_an_injected_timestamp_violation():
    """Corrupting ``wts > rts`` on a resident tardis line must trip the
    quiescent invariant hooks — the battery is not vacuous."""
    system, __ = probed_run("tardis", SEEDS[0])
    corrupted = False
    for cache in system.caches:
        for __, entry in cache._lines.items():
            entry.wts = entry.rts + 1
            corrupted = True
            break
        if corrupted:
            break
    assert corrupted, "workload left no resident line to corrupt"
    with pytest.raises(ProtocolError, match="wts"):
        check_coherence(system)


def _resident_shared_line(system):
    """A ``(tile, line, cache_entry, home_entry)`` with a stable S copy
    registered at its home (seed 42 reliably leaves one behind)."""
    from repro.common.types import CacheState

    for tile, cache in enumerate(system.caches):
        for line, entry in cache._lines.items():
            if entry.state is not CacheState.S:
                continue
            home = system.directories[int(line) % len(system.directories)]
            home_entry = home.entry(line)
            if home_entry is not None and home_entry.is_stable() \
                    and tile in home_entry.sharers:
                return tile, line, entry, home_entry
    return None


def test_probe_detects_an_orphan_spec_copy():
    """A resident SPEC copy its home never registered would escape every
    future reversal — the rcp quiescent invariant must name it."""
    from repro.common.types import CacheState

    system, __ = probed_run("rcp", 42)
    found = _resident_shared_line(system)
    assert found, "workload left no registered shared copy to corrupt"
    tile, line, entry, home_entry = found
    entry.state = CacheState.SPEC
    home_entry.sharers.discard(tile)  # home forgets the reader entirely
    with pytest.raises(ProtocolError, match="orphan SPEC"):
        check_coherence(system)


def test_probe_detects_a_dirty_spec_copy():
    """Speculative copies are read-only: one whose data diverged from
    the home's authoritative line must trip the data-agreement check."""
    from repro.common.types import CacheState

    system, __ = probed_run("rcp", 42)
    found = _resident_shared_line(system)
    assert found, "workload left no registered shared copy to corrupt"
    tile, line, entry, home_entry = found
    # A correctly-registered speculative reader ...
    entry.state = CacheState.SPEC
    home_entry.sharers.discard(tile)
    home_entry.spec.add(tile)
    check_coherence(system)  # the re-registration alone is legal
    # ... whose copy then grows a store the protocol never allows.
    entry.data.write(0, 99, 123)
    with pytest.raises(ProtocolError, match="differs from LLC"):
        check_coherence(system)


def test_probe_detects_an_injected_swmr_violation():
    """Two baseline caches in M for one line must trip the per-cycle
    hook."""
    from repro.common.types import CacheState

    import copy

    from repro.coherence.invariants import check_cycle
    from repro.common.types import CacheState

    system, __ = probed_run("baseline", SEEDS[0])
    donor = None
    for tile, cache in enumerate(system.caches):
        for line, entry in cache._lines.items():
            donor = (tile, line, entry)
            break
        if donor:
            break
    assert donor is not None
    tile, line, entry = donor
    entry.state = CacheState.M
    other = system.caches[(tile + 1) % len(system.caches)]
    clone = copy.deepcopy(entry)
    clone.state = CacheState.M
    other._lines.insert(line, clone)
    with pytest.raises(ProtocolError):
        check_cycle(system)
