"""The backend registry and its capability contract.

The matrix the rest of the suite relies on: all three shipped backends
are registered, their capability flags gate configuration validation
(tardis and rcp have no WritersBlock and therefore no OOO_WB commit
mode; only rcp carries a speculative cache state), the conformance
runner resolves each backend's strongest sound commit mode, and a
fourth backend is one ``register_backend`` call away.
"""

import dataclasses

import pytest

from repro.coherence import backend as backend_mod
from repro.coherence.backend import (
    BaselineBackend,
    CoherenceBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.coherence.rcp import RcpBackend, RcpCache, RcpDirectory
from repro.coherence.tardis import TardisBackend, TardisCache, TardisDirectory
from repro.common.errors import ConfigError
from repro.common.types import CommitMode
from repro.conform import default_mode_for
from repro.common.params import table6_system
from repro.sim import MulticoreSystem


def test_all_shipped_backends_are_registered():
    assert {"baseline", "rcp", "tardis"} <= set(backend_names())
    assert isinstance(get_backend("baseline"), BaselineBackend)
    assert isinstance(get_backend("rcp"), RcpBackend)
    assert isinstance(get_backend("tardis"), TardisBackend)


def test_unknown_backend_is_a_config_error():
    with pytest.raises(ConfigError, match="unknown coherence backend"):
        get_backend("dragon")


def test_capability_flags():
    baseline = get_backend("baseline")
    assert baseline.supports_writers_block
    assert baseline.has_invalidations
    assert baseline.supported_commit_modes is None  # all modes
    assert not baseline.has_speculative_state
    tardis = get_backend("tardis")
    assert not tardis.supports_writers_block
    assert not tardis.has_invalidations
    assert not tardis.has_speculative_state
    assert CommitMode.OOO_WB not in tardis.supported_commit_modes
    assert {CommitMode.IN_ORDER, CommitMode.OOO} \
        <= set(tardis.supported_commit_modes)
    rcp = get_backend("rcp")
    assert not rcp.supports_writers_block
    assert rcp.has_invalidations
    assert rcp.has_speculative_state
    assert CommitMode.OOO_WB not in rcp.supported_commit_modes
    assert {CommitMode.IN_ORDER, CommitMode.OOO} \
        <= set(rcp.supported_commit_modes)


@pytest.mark.parametrize("name", ["tardis", "rcp"])
def test_non_writersblock_backends_reject_writersblock_and_ooo_wb(name):
    backend = get_backend(name)
    with pytest.raises(ConfigError, match="WritersBlock"):
        backend.validate_params(table6_system(
            "SLM", commit_mode=CommitMode.OOO, writers_block=True))
    # OOO_WB implies writers_block; probe the mode check on its own.
    params = dataclasses.replace(
        table6_system("SLM", commit_mode=CommitMode.OOO_WB),
        writers_block=False)
    with pytest.raises(ConfigError, match="commit mode"):
        backend.validate_params(params)
    # The supported combination validates cleanly.
    backend.validate_params(table6_system("SLM", commit_mode=CommitMode.OOO))


def test_system_construction_goes_through_the_backend():
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO,
                           backend="tardis")
    system = MulticoreSystem(params)
    assert system.backend is get_backend("tardis")
    assert all(isinstance(c, TardisCache) for c in system.caches)
    assert all(isinstance(d, TardisDirectory) for d in system.directories)
    bad = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB,
                        backend="tardis")
    with pytest.raises(ConfigError):
        MulticoreSystem(bad)


def test_rcp_system_construction_goes_through_the_backend():
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO,
                           backend="rcp")
    system = MulticoreSystem(params)
    assert system.backend is get_backend("rcp")
    assert all(isinstance(c, RcpCache) for c in system.caches)
    assert all(isinstance(d, RcpDirectory) for d in system.directories)
    bad = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB,
                        backend="rcp")
    with pytest.raises(ConfigError):
        MulticoreSystem(bad)


def test_default_mode_for_resolves_the_strongest_sound_mode():
    assert default_mode_for("baseline") is CommitMode.OOO_WB
    assert default_mode_for("rcp") is CommitMode.OOO
    assert default_mode_for("tardis") is CommitMode.OOO


def test_fourth_backend_is_one_registration_away(monkeypatch):
    class NullBackend(CoherenceBackend):
        name = "null"
        supports_writers_block = False
        supported_commit_modes = (CommitMode.IN_ORDER, CommitMode.OOO)

    monkeypatch.delitem(backend_mod._REGISTRY, "null", raising=False)
    try:
        register_backend(NullBackend())
        assert "null" in backend_names()
        assert default_mode_for("null") is CommitMode.OOO
    finally:
        backend_mod._REGISTRY.pop("null", None)
