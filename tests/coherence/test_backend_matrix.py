"""The backend registry and its capability contract.

The matrix the rest of the suite relies on: both shipped backends are
registered, their capability flags gate configuration validation (the
tardis backend has no WritersBlock and therefore no OOO_WB commit
mode), the conformance runner resolves each backend's strongest sound
commit mode, and a third backend is one ``register_backend`` call away.
"""

import dataclasses

import pytest

from repro.coherence import backend as backend_mod
from repro.coherence.backend import (
    BaselineBackend,
    CoherenceBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.coherence.tardis import TardisBackend, TardisCache, TardisDirectory
from repro.common.errors import ConfigError
from repro.common.types import CommitMode
from repro.conform import default_mode_for
from repro.common.params import table6_system
from repro.sim import MulticoreSystem


def test_both_shipped_backends_are_registered():
    assert {"baseline", "tardis"} <= set(backend_names())
    assert isinstance(get_backend("baseline"), BaselineBackend)
    assert isinstance(get_backend("tardis"), TardisBackend)


def test_unknown_backend_is_a_config_error():
    with pytest.raises(ConfigError, match="unknown coherence backend"):
        get_backend("dragon")


def test_capability_flags():
    baseline = get_backend("baseline")
    assert baseline.supports_writers_block
    assert baseline.has_invalidations
    assert baseline.supported_commit_modes is None  # all modes
    tardis = get_backend("tardis")
    assert not tardis.supports_writers_block
    assert not tardis.has_invalidations
    assert CommitMode.OOO_WB not in tardis.supported_commit_modes
    assert {CommitMode.IN_ORDER, CommitMode.OOO} \
        <= set(tardis.supported_commit_modes)


def test_tardis_rejects_writersblock_and_ooo_wb():
    tardis = get_backend("tardis")
    with pytest.raises(ConfigError, match="WritersBlock"):
        tardis.validate_params(table6_system(
            "SLM", commit_mode=CommitMode.OOO, writers_block=True))
    # OOO_WB implies writers_block; probe the mode check on its own.
    params = dataclasses.replace(
        table6_system("SLM", commit_mode=CommitMode.OOO_WB),
        writers_block=False)
    with pytest.raises(ConfigError, match="commit mode"):
        tardis.validate_params(params)
    # The supported combination validates cleanly.
    tardis.validate_params(table6_system("SLM", commit_mode=CommitMode.OOO))


def test_system_construction_goes_through_the_backend():
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO,
                           backend="tardis")
    system = MulticoreSystem(params)
    assert system.backend is get_backend("tardis")
    assert all(isinstance(c, TardisCache) for c in system.caches)
    assert all(isinstance(d, TardisDirectory) for d in system.directories)
    bad = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB,
                        backend="tardis")
    with pytest.raises(ConfigError):
        MulticoreSystem(bad)


def test_default_mode_for_resolves_the_strongest_sound_mode():
    assert default_mode_for("baseline") is CommitMode.OOO_WB
    assert default_mode_for("tardis") is CommitMode.OOO


def test_third_backend_is_one_registration_away(monkeypatch):
    class NullBackend(CoherenceBackend):
        name = "null"
        supports_writers_block = False
        supported_commit_modes = (CommitMode.IN_ORDER, CommitMode.OOO)

    monkeypatch.delitem(backend_mod._REGISTRY, "null", raising=False)
    try:
        register_backend(NullBackend())
        assert "null" in backend_names()
        assert default_mode_for("null") is CommitMode.OOO
    finally:
        backend_mod._REGISTRY.pop("null", None)
