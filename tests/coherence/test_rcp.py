"""Directed tests for the rcp reversible-coherence backend.

Each test drives the protocol harness (``backend="rcp"``) through one
mechanism of the reversible design: speculative acquisition in the SPEC
state (invisible to the directory's conflict ordering), reversal of
speculative copies by a conflicting write (UNDO / UNDO_ACK driving the
squash hook), confirm-on-commit promotion to a stable sharer, the
self-reversal a core performs when its own store conflicts with its own
speculative read, reversal during directory eviction, and the
ProtocolError guards on transitions the design rules out.
"""

from types import SimpleNamespace

import pytest

from repro.coherence.backend import get_backend
from repro.common.errors import ProtocolError
from repro.common.params import CacheParams
from repro.common.types import CacheState, DirState

from .conftest import ProtocolHarness

ADDR = 0x1000


@pytest.fixture
def rh():
    return ProtocolHarness(backend="rcp")


def test_speculative_read_installs_a_reversible_copy(rh):
    h = rh
    out = h.read_blocking(0, ADDR, ordered=False)
    assert out["value"] == (0, 0)
    line = h.line(ADDR)
    assert h.caches[0].line_state(line) is CacheState.SPEC
    entry = h.home_dir(ADDR).entry(line)
    assert entry.state is DirState.S
    assert entry.spec == {0}
    assert entry.sharers == set()
    assert h.stats.value("rcp.spec_reads") == 1
    # An ordered read takes the stable path: registered as a sharer.
    h.read_blocking(1, ADDR, ordered=True)
    assert entry.sharers == {1}
    assert h.stats.value("rcp.spec_reads") == 1


def test_conflicting_write_reverses_the_speculative_copy(rh):
    h = rh
    line = h.line(ADDR)
    h.read_blocking(0, ADDR, ordered=False)
    h.write_blocking(1, ADDR, version=1, value=42)
    h.run()
    # The reversal dropped the copy and fired the squash hook — but it
    # is an Undo, not an invalidation (the copy was never stable).
    assert h.caches[0].line_state(line) is CacheState.I
    assert h.invalidations[0] == [line]
    assert h.stats.value("rcp.reversals") == 1
    assert h.stats.value("cache.invalidations_received") == 0
    entry = h.home_dir(ADDR).entry(line)
    assert entry.state is DirState.M
    assert entry.owner == 1
    # The write propagated: a later ordered read recalls the owner and
    # observes the store.
    assert h.read_blocking(2, ADDR)["value"] == (1, 42)
    assert h.stats.value("rcp.recalls") == 1


def test_ordered_reread_confirms_and_promotes_to_stable_sharer(rh):
    h = rh
    line = h.line(ADDR)
    h.read_blocking(0, ADDR, ordered=False)
    out = h.read_blocking(0, ADDR, ordered=True)
    assert out["status"] == "hit"
    assert out["value"] == (0, 0)
    assert h.caches[0].line_state(line) is CacheState.S
    assert h.stats.value("rcp.confirms") == 1
    entry = h.home_dir(ADDR).entry(line)
    assert entry.spec == set()
    assert entry.sharers == {0}
    # Promoted copies are stable: a conflicting write now invalidates
    # (Inv, not Undo) — the committed load needs no squash, but the
    # hook still fires for the ordering point.
    h.write_blocking(1, ADDR, version=1, value=9)
    h.run()
    assert h.caches[0].line_state(line) is CacheState.I
    assert h.stats.value("cache.invalidations_received") == 1
    assert h.stats.value("rcp.reversals") == 0


def test_ordered_load_waiting_on_spec_fill_promotes_at_delivery(rh):
    h = rh
    line = h.line(ADDR)
    spec = h.read(0, ADDR, ordered=False)     # miss: GetSSpec in flight
    ordered = h.read(0, ADDR, ordered=True)   # piggybacks on the MSHR
    assert ordered["status"] == "miss"
    h.run()
    assert spec["value"] == (0, 0) and ordered["value"] == (0, 0)
    # The ordered waiter committed against the speculative fill, so the
    # copy was promoted the moment the data arrived.
    assert h.caches[0].line_state(line) is CacheState.S
    assert h.stats.value("rcp.spec_reads") == 1
    assert h.stats.value("rcp.confirms") == 1
    assert h.home_dir(ADDR).entry(line).sharers == {0}


def test_own_store_self_reverses_the_speculative_copy(rh):
    h = rh
    line = h.line(ADDR)
    h.read_blocking(0, ADDR, ordered=False)
    assert h.caches[0].line_state(line) is CacheState.SPEC
    # The store conflicts with the core's own speculative read: the
    # copy is rolled back (squashing younger loads bound from it)
    # before ownership is even requested.
    h.write_blocking(0, ADDR, version=1, value=5)
    assert h.invalidations[0] == [line]
    assert h.stats.value("rcp.reversals") == 1
    assert h.caches[0].line_state(line) is CacheState.M
    assert h.read_blocking(1, ADDR)["value"] == (1, 5)


def test_speculative_read_of_a_dirty_line_recalls_the_owner(rh):
    h = rh
    line = h.line(ADDR)
    h.write_blocking(0, ADDR, version=1, value=7)
    out = h.read_blocking(1, ADDR, ordered=False)
    assert out["value"] == (1, 7)
    assert h.stats.value("rcp.recalls") == 1
    # The recalled owner keeps a stable shared copy; the speculative
    # reader is tracked reversibly.
    assert h.caches[0].line_state(line) is CacheState.S
    assert h.caches[1].line_state(line) is CacheState.SPEC
    entry = h.home_dir(ADDR).entry(line)
    assert entry.state is DirState.S
    assert entry.sharers == {0}
    assert entry.spec == {1}


def test_directory_eviction_reverses_unconfirmed_copies():
    params = CacheParams(llc_sets_per_bank=1, llc_ways=1)
    h = ProtocolHarness(backend="rcp", cache_params=params)
    line = h.line(0x000)
    h.read_blocking(0, 0x000, ordered=False)      # line 0, bank 0
    assert h.caches[0].line_state(line) is CacheState.SPEC
    h.read_blocking(1, 0x100, ordered=True)       # line 4: same bank+set
    # The home forgot the line, so it could not leave a reversible copy
    # behind: the eviction sent an Undo and squashed the reader.
    assert h.home_dir(0x000).entry(line) is None
    assert h.caches[0].line_state(line) is CacheState.I
    assert h.invalidations[0] == [line]
    assert h.stats.value("rcp.reversals") == 1
    assert h.stats.value("dir.llc_evictions") == 1
    # The spilled data survives: a fresh read refetches version 0.
    assert h.read_blocking(0, 0x000)["value"] == (0, 0)


def test_undo_on_a_promoted_copy_is_accepted(rh):
    # The confirm-crossed-undo race, delivered deterministically: the
    # cache promoted its copy (Confirm in flight or ignored as stale)
    # and the reversal lands on the now-stable S copy.
    h = rh
    line = h.line(ADDR)
    h.read_blocking(0, ADDR, ordered=False)
    h.read_blocking(0, ADDR, ordered=True)        # promotes to S
    h.caches[0]._on_undo(SimpleNamespace(line=line))
    # (The UndoAck stays undelivered — there is no real write
    # collecting it; the cache-side effects are synchronous.)
    assert h.caches[0].line_state(line) is CacheState.I
    assert h.invalidations[0] == [line]
    assert h.stats.value("rcp.reversals") == 1


def test_stale_confirm_is_ignored(rh):
    # A Confirm that lost the race to a conflicting write arrives at an
    # entry whose spec set no longer names the sender — it must be
    # dropped without disturbing the new owner.
    h = rh
    line = h.line(ADDR)
    h.read_blocking(0, ADDR, ordered=False)
    h.write_blocking(1, ADDR, version=1, value=3)
    h.run()
    entry = h.home_dir(ADDR).entry(line)
    assert entry.state is DirState.M and entry.owner == 1
    h.home_dir(ADDR)._on_confirm(SimpleNamespace(line=line, src=0))
    assert entry.state is DirState.M and entry.owner == 1
    assert entry.sharers == set() and entry.spec == set()


def test_illegal_transitions_are_protocol_errors(rh):
    h = rh
    line = h.line(ADDR)
    # A speculative copy carries no write permission.
    h.read_blocking(0, ADDR, ordered=False)
    with pytest.raises(ProtocolError):
        h.caches[0].perform_store(ADDR, 1, 1)
    with pytest.raises(ProtocolError):
        h.caches[0].perform_atomic(ADDR, 1, lambda v: v)
    # No WritersBlock machinery: deferred acks do not exist.
    with pytest.raises(ProtocolError):
        h.caches[0].send_deferred_ack(line)
    # An Undo can never hit an owned copy (the write that owns the line
    # flushed every speculative reader first).
    h.write_blocking(1, ADDR, version=1, value=2)
    with pytest.raises(ProtocolError):
        h.caches[1]._on_undo(SimpleNamespace(line=line))
    # A Recall must find the owner (or its crossing writeback).
    with pytest.raises(ProtocolError):
        h.caches[0]._on_recall(SimpleNamespace(line=line))
    # A Confirm from the current owner is impossible by channel FIFO.
    with pytest.raises(ProtocolError):
        h.home_dir(ADDR)._on_confirm(SimpleNamespace(line=line, src=1))
    # Acks only arrive while a write or eviction is collecting them.
    with pytest.raises(ProtocolError):
        h.home_dir(ADDR)._on_ack(
            SimpleNamespace(line=line, src=0, payload={}))


def test_rcp_construction_rejects_writersblock(rh):
    h = rh
    backend = get_backend("rcp")
    with pytest.raises(ProtocolError):
        backend.build_cache(0, h.params, h.network, h.events, h.stats,
                            writers_block=True)
    with pytest.raises(ProtocolError):
        backend.build_directory(0, h.params, h.network, h.events, h.stats,
                                writers_block=True)
