"""Protocol-level harness: caches + directory + mesh, no cores.

Tests drive the private-cache methods directly and control the lockdown
hooks, so every protocol transition can be exercised deterministically.

The harness is backend-parametric: ``base_harness`` (and the
``backend_name`` fixture riding along with it) runs each test once per
registered coherence backend, building the caches and directory banks
through the backend's factories.  Tests that assert baseline-specific
mechanics (MESI line states, invalidation traffic, sharer sets) carry
``@pytest.mark.baseline_only`` and are skipped for the other backends.
The ``harness`` fixture stays baseline-only by construction: it enables
WritersBlock, which only the baseline protocol implements.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import pytest

from repro.coherence.backend import backend_names, get_backend
from repro.coherence.private_cache import LoadRequest
from repro.common.event_queue import EventQueue
from repro.common.params import CacheParams, NetworkParams
from repro.common.stats import StatsRegistry
from repro.common.types import LineAddr
from repro.network.mesh import MeshNetwork


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "baseline_only: test asserts baseline (MESI/WritersBlock) "
        "mechanics; skipped for other coherence backends")
    config.addinivalue_line(
        "markers",
        "no_speculative_state: test assumes unordered loads install "
        "stable (non-reversible) copies; skipped for backends with "
        "has_speculative_state (rcp)")


class ProtocolHarness:
    def __init__(self, num_tiles: int = 4, *, writers_block: bool = True,
                 cache_params: Optional[CacheParams] = None,
                 backend: str = "baseline") -> None:
        self.backend_name = backend
        self.backend = get_backend(backend)
        if not self.backend.supports_writers_block:
            writers_block = False
        self.events = EventQueue()
        self.stats = StatsRegistry()
        self.params = cache_params or CacheParams()
        self.network = MeshNetwork(num_tiles, NetworkParams(), self.events,
                                   self.stats)
        self.dirs = [
            self.backend.build_directory(t, self.params, self.network,
                                         self.events, self.stats,
                                         writers_block=writers_block)
            for t in range(num_tiles)
        ]
        self.caches = [
            self.backend.build_cache(t, self.params, self.network,
                                     self.events, self.stats,
                                     writers_block=writers_block)
            for t in range(num_tiles)
        ]
        #: Per-tile lines currently "in lockdown" (simulating the core).
        self.lockdowns: List[Set[LineAddr]] = [set() for __ in range(num_tiles)]
        #: Per-tile log of invalidated lines.
        self.invalidations: List[List[LineAddr]] = [[] for __ in range(num_tiles)]
        #: (tile, line) pairs whose invalidation was Nacked ("seen" bits).
        self.nacked: Set[tuple] = set()
        for tile, cache in enumerate(self.caches):
            cache.invalidation_hook = self._hook(tile)
            cache.lockdown_query = (
                lambda line, t=tile: line in self.lockdowns[t])

    def _hook(self, tile: int):
        def hook(line: LineAddr) -> bool:
            self.invalidations[tile].append(line)
            if line in self.lockdowns[tile]:
                self.nacked.add((tile, line))
                return True
            return False
        return hook

    def release_lockdown(self, tile: int, line: LineAddr) -> None:
        """Lift the lockdown; send the deferred ack if it was "seen"."""
        self.lockdowns[tile].discard(line)
        if (tile, line) in self.nacked:
            self.nacked.remove((tile, line))
            self.caches[tile].send_deferred_ack(line)

    # ------------------------------------------------------------ operations
    def run(self, cycles: int = 2000) -> None:
        for __ in range(cycles):
            self.events.run_due()
            if self.events.empty:
                return
            self.events.advance()

    def read(self, tile: int, byte_addr: int, *, sos: bool = False,
             ordered: bool = True):
        """Issue a load; returns a dict updated when data arrives."""
        out = {"value": None, "uncacheable": None, "retries": 0}
        request = LoadRequest(
            byte_addr=byte_addr,
            is_ordered=lambda: ordered,
            on_value=lambda vv, unc: out.update(value=vv, uncacheable=unc),
            on_must_retry=lambda wait=True: out.update(retries=out["retries"] + 1),
        )
        status = self.caches[tile].load(request, sos_bypass=sos)
        out["status"] = status
        return out

    def read_blocking(self, tile: int, byte_addr: int, **kwargs):
        out = self.read(tile, byte_addr, **kwargs)
        self.run()
        return out

    def acquire_write(self, tile: int, byte_addr: int):
        """Request write permission; returns dict with 'granted' flag."""
        line = LineAddr(byte_addr // self.params.line_bytes)
        out = {"granted": False}
        self.caches[tile].request_write(
            line, lambda: out.update(granted=True))
        return out

    def write_blocking(self, tile: int, byte_addr: int, version: int,
                       value: int) -> None:
        """Acquire permission, wait, and perform the store."""
        out = self.acquire_write(tile, byte_addr)
        self.run()
        line = LineAddr(byte_addr // self.params.line_bytes)
        from repro.common.types import CacheState
        assert self.caches[tile].line_state(line) is CacheState.M, out
        self.caches[tile].perform_store(byte_addr, version, value)

    def line(self, byte_addr: int) -> LineAddr:
        return LineAddr(byte_addr // self.params.line_bytes)

    def home_dir(self, byte_addr: int):
        return self.dirs[int(self.line(byte_addr)) % len(self.dirs)]


@pytest.fixture
def harness():
    return ProtocolHarness()


@pytest.fixture(params=backend_names())
def backend_name(request):
    """The coherence backend under test (every registered backend, so a
    new ``register_backend`` call automatically joins the matrix).
    Skips ``baseline_only`` tests for every backend except baseline and
    ``no_speculative_state`` tests for backends whose unordered loads
    install reversible (SPEC) copies."""
    if request.param != "baseline" and \
            request.node.get_closest_marker("baseline_only"):
        pytest.skip(f"baseline-specific mechanics (backend={request.param})")
    if request.node.get_closest_marker("no_speculative_state") and \
            get_backend(request.param).has_speculative_state:
        pytest.skip(f"backend {request.param} tracks speculative reads "
                    "in a dedicated SPEC state")
    return request.param


@pytest.fixture
def base_harness(backend_name):
    """Backend-parametric harness with WritersBlock disabled — the
    protocol surface every backend must provide."""
    return ProtocolHarness(writers_block=False, backend=backend_name)
