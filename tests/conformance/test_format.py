"""The herd-style ``.litmus`` parser/writer: round-trips and errors."""

import pathlib

import pytest

from repro.conform import (ConformTest, cld, cld_slow, cmf, cst,
                           parse_litmus, write_litmus)
from repro.conform.generator import generate_corpus
from repro.conform.litmus_format import LitmusParseError

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"


def sample_test() -> ConformTest:
    return ConformTest(
        name="MP+po+slow",
        threads=[
            [cst("x", 1), cst("y", 1)],
            [cld_slow("y", "EAX"), cld("x", "EBX")],
        ],
        exists=[{"1:EAX": 1, "1:EBX": 0}],
        expect="forbidden",
        family="mp",
        description="message passing, slow older load",
    )


def test_writer_golden():
    """The canonical writer output is pinned byte for byte."""
    expected = (
        'X86 MP+po+slow\n'
        '"message passing, slow older load"\n'
        '(* family: mp *)\n'
        '(* expect: forbidden *)\n'
        '{ x=0; y=0; }\n'
        ' P0         | P1 ;\n'
        ' MOV [x],$1 | MOVSLOW EAX,[y] ;\n'
        ' MOV [y],$1 | MOV EBX,[x] ;\n'
        'exists (1:EAX=1 /\\ 1:EBX=0)\n'
    )
    assert write_litmus(sample_test()) == expected


def test_parse_inverts_write():
    test = sample_test()
    parsed = parse_litmus(write_litmus(test))
    assert parsed == test


def test_roundtrip_whole_generated_corpus():
    for test in generate_corpus():
        assert parse_litmus(write_litmus(test)) == test, test.name


def test_committed_corpus_is_writer_canonical():
    """Every committed file is byte-identical to the canonical writer
    output of its own parse (no hand edits drifting from the format)."""
    paths = sorted(CORPUS_DIR.glob("*.litmus"))
    assert paths, "committed corpus is missing"
    for path in paths:
        text = path.read_text()
        assert write_litmus(parse_litmus(text)) == text, path.name


def test_mfence_and_dep_loads_roundtrip():
    test = ConformTest(
        name="SB+mf+mf",
        threads=[
            [cst("x", 1), cmf(), cld("y", "EAX")],
            [cst("y", 1), cmf(), cld("x", "EAX")],
        ],
        exists=[{"0:EAX": 0, "1:EAX": 0}],
        expect="forbidden",
        family="sb",
    )
    text = write_litmus(test)
    assert "MFENCE" in text
    assert parse_litmus(text) == test


def test_parse_rejects_bad_header():
    with pytest.raises(LitmusParseError):
        parse_litmus("PPC MP\n{ x=0; }\n P0 ;\n MOV [x],$1 ;\n")


def test_parse_rejects_nonzero_init():
    text = write_litmus(sample_test()).replace("x=0", "x=7")
    with pytest.raises(LitmusParseError):
        parse_litmus(text)


def test_parse_rejects_unknown_instruction():
    text = write_litmus(sample_test()).replace("MOV EBX,[x]", "XCHG EBX,[x]")
    with pytest.raises(LitmusParseError):
        parse_litmus(text)


def test_parse_rejects_exists_on_unknown_register():
    text = write_litmus(sample_test()).replace("1:EBX=0", "1:ECX=0")
    with pytest.raises((LitmusParseError, ValueError)):
        parse_litmus(text)
