"""TSO conformance subsystem tests (corpus, differential, witnesses)."""
