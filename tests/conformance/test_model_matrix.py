"""Model-matrix sanity: SC ⊆ TSO ⊆ RMO, checked programmatically.

The three :class:`~repro.consistency.models.MemoryModel` specs must
nest — every SC-reachable outcome is TSO-reachable, every TSO-reachable
outcome is RMO-reachable — and the nesting must be *strict* somewhere
(witnessed by SB under TSO and by MP under RMO).  Both the operational
machines and the axiomatic enumeration are held to the same chain, and
the per-model hand-encoded expectations must respect it.
"""

from repro.conform.model import (axiomatic_outcomes, exists_reachable,
                                 operational_outcomes)
from repro.conform.runner import load_corpus, tier1_slice
from repro.consistency.models import MODELS, RMO, SC, TSO

NEW_FAMILIES = ("r", "s", "2+2w", "wrwc", "irrwiw", "iriw3", "corr4")


def corpus():
    return {test.name: test for test in load_corpus()}


def test_ppo_matrices_nest():
    """Fewer preserved pairs = weaker model: RMO ⊆ TSO ⊆ SC."""
    assert RMO.ppo <= TSO.ppo <= SC.ppo
    assert RMO.ppo < TSO.ppo < SC.ppo  # and strictly so
    assert set(MODELS) == {"sc", "tso", "rmo"}


def test_expectations_respect_model_strength():
    """allowed(sc) ⇒ allowed(tso) ⇒ allowed(rmo), contrapositive of
    the outcome-set inclusion, on every corpus test."""
    for test in load_corpus():
        if test.expect_sc == "allowed":
            assert test.expect == "allowed", test.name
        if test.expect == "allowed":
            assert test.expect_rmo == "allowed", test.name


def test_outcome_sets_monotone_on_slice():
    """op(sc) ⊆ op(tso) ⊆ op(rmo) and likewise axiomatically, for
    every tier-1 test; strictness witnessed at both steps."""
    sc_strict = tso_strict = False
    for test in tier1_slice(load_corpus()):
        op_sc = operational_outcomes(test, "sc")
        op_tso = operational_outcomes(test, "tso")
        op_rmo = operational_outcomes(test, "rmo")
        assert op_sc <= op_tso <= op_rmo, test.name
        ax_sc = axiomatic_outcomes(test, "sc")
        ax_tso = axiomatic_outcomes(test, "tso")
        ax_rmo = axiomatic_outcomes(test, "rmo")
        assert ax_sc <= ax_tso <= ax_rmo, test.name
        sc_strict = sc_strict or op_sc < op_tso
        tso_strict = tso_strict or op_tso < op_rmo
    assert sc_strict and tso_strict


def test_sc_forbids_every_tso_allowed_outcome():
    """Each corpus test that TSO *allows* (SB/R/RWC/IRRWIW shapes with
    unfenced store→load gaps) must be semantically unreachable on the
    SC machine — not just labelled forbidden."""
    checked = 0
    for test in load_corpus():
        if test.expect != "allowed":
            continue
        checked += 1
        assert exists_reachable(operational_outcomes(test, "tso"),
                                test.exists), test.name
        assert not exists_reachable(operational_outcomes(test, "sc"),
                                    test.exists), test.name
    assert checked >= 20


def test_rmo_strictly_weaker_on_mp():
    """MP+po+po: forbidden under TSO, observable under RMO — the
    headline difference between the two specs."""
    test = corpus()["MP+po+po"]
    assert not exists_reachable(operational_outcomes(test, "tso"),
                                test.exists)
    assert exists_reachable(operational_outcomes(test, "rmo"),
                            test.exists)


def test_new_families_operational_equals_axiomatic():
    """Both directions (set equality, not mere inclusion) for every
    tier-1 member of the new families, under every model."""
    slice_ = [t for t in tier1_slice(load_corpus())
              if t.family in NEW_FAMILIES]
    assert slice_
    for test in slice_:
        for model in ("sc", "tso", "rmo"):
            op = operational_outcomes(test, model)
            ax = axiomatic_outcomes(test, model)
            assert op == ax, (test.name, model,
                              sorted(map(sorted, op ^ ax))[:4])


def test_full_matrix_cross_check_when_slow(slow):
    """--slow / nightly: all 344 tests × 3 models, op == ax and the
    hand-encoded expectation matches reachability exactly."""
    if not slow:
        return
    for test in load_corpus():
        for model in ("sc", "tso", "rmo"):
            op = operational_outcomes(test, model)
            assert op == axiomatic_outcomes(test, model), (test.name, model)
            reachable = exists_reachable(op, test.exists)
            assert reachable == (test.expect_for(model) == "allowed"), \
                (test.name, model)
