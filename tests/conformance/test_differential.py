"""Three-way differential checking and the tier-1 corpus slice."""

import copy

from repro.common.types import CommitMode
from repro.conform.differential import check_test, default_delays
from repro.conform.model import axiomatic_outcomes, operational_outcomes
from repro.conform.runner import (ConformanceResult, load_corpus,
                                  run_conformance, tier1_slice)


def corpus():
    return {test.name: test for test in load_corpus()}


def test_default_delay_grid_shape():
    grid = default_delays(3)
    assert grid[0] == (0, 0, 0)
    assert (40, 0, 0) in grid and (0, 40, 0) in grid and (0, 0, 40) in grid
    assert len(grid) == 4


def test_operational_subset_of_axiomatic_on_samples():
    tests = corpus()
    for name in ("MP+po+po", "SB+po+po", "SB+mf+mf", "IRIW+po+po",
                 "WRC+po+po", "ISA24+po+po+po+po"):
        test = tests[name]
        assert operational_outcomes(test) <= axiomatic_outcomes(test), name


def test_check_test_clean_on_protected_mode():
    tests = corpus()
    for name in ("MP+po+slow", "SB+mf+mf", "CORR3+po+slow"):
        report = check_test(tests[name], perturb=1, seed=0)
        assert report.ok, (name, [v.detail for v in report.violations])
        assert report.sim_runs == len(tests[name].threads) + 2
        assert report.sim_outcomes
        assert report.operational_count >= 1
        assert report.axiomatic_count >= report.operational_count


def test_expectation_mismatch_is_flagged():
    """Tampering the hand-encoded verdict must trip the cross-check
    against the operational machine (both directions)."""
    tests = corpus()
    wrong_forbidden = copy.deepcopy(tests["SB+po+po"])  # actually allowed
    wrong_forbidden.expect = "forbidden"
    report = check_test(wrong_forbidden, perturb=0, delays=[(0, 0)])
    assert any(v.kind == "expectation-mismatch" for v in report.violations)

    wrong_allowed = copy.deepcopy(tests["MP+mf+mf"])  # actually forbidden
    wrong_allowed.expect = "allowed"
    report = check_test(wrong_allowed, perturb=0, delays=[(0, 0)])
    assert any(v.kind == "expectation-mismatch" for v in report.violations)


def test_unsafe_commit_mode_is_caught_with_witnesses():
    """OOO_UNSAFE exhibits the paper's forbidden reorder; every
    simulator-side violation must carry a replayable witness."""
    report = check_test(corpus()["CORR3+po+slow"],
                        mode=CommitMode.OOO_UNSAFE, perturb=2, seed=0)
    kinds = {v.kind for v in report.violations}
    assert "forbidden-outcome" in kinds
    assert "sim-not-operational" in kinds
    assert "checker-violation" in kinds
    for violation in report.violations:
        assert violation.witness is not None
        assert violation.witness["schema"] == "repro-witness/1"


def test_tier1_slice_is_deterministic_and_stratified():
    tests = load_corpus()
    sliced = tier1_slice(tests)
    assert sliced == tier1_slice(tests)
    assert len(sliced) < len(tests)
    assert {t.family for t in sliced} == {t.family for t in tests}
    names = {t.name for t in tests}
    assert all(t.name in names for t in sliced)


def test_run_conformance_slice_is_clean(tmp_path):
    """The tier-1 slice: zero violations, zero witnesses written."""
    result = run_conformance(tier1_slice(load_corpus()),
                             witness_dir=tmp_path, perturb=1, seed=0)
    assert isinstance(result, ConformanceResult)
    assert result.ok, [v.detail for v in result.violations]
    assert not list(tmp_path.iterdir())
    payload = result.to_payload()
    assert payload["schema"] == "repro-conformance/1"
    assert payload["tests"] == len(result.reports)
    families = {row["family"] for row in payload["families"]}
    assert {"mp", "sb", "iriw", "corr3"} <= families


def test_model_parametric_check_on_samples():
    """The same test checked under sc/tso/rmo: sim phase only where
    the hardware satisfies the model, per-model expectation applied."""
    tests = corpus()
    sb = tests["SB+po+po"]
    sc_report = check_test(sb, model="sc", perturb=0, delays=[(0, 0)])
    assert sc_report.model == "sc"
    assert sc_report.sim_runs == 0  # TSO hardware exceeds SC: skipped
    assert sc_report.ok, [v.detail for v in sc_report.violations]
    rmo_report = check_test(tests["MP+po+po"], model="rmo",
                            perturb=1, seed=0)
    assert rmo_report.model == "rmo"
    assert rmo_report.sim_runs > 0  # TSO hardware satisfies RMO
    assert rmo_report.ok, [v.detail for v in rmo_report.violations]


def test_run_conformance_records_model(tmp_path):
    slice_ = [t for t in tier1_slice(load_corpus())
              if t.family in ("r", "2+2w")]
    result = run_conformance(slice_, model="rmo", witness_dir=tmp_path,
                             perturb=0, seed=0)
    assert result.ok, [v.detail for v in result.violations]
    assert result.to_payload()["model"] == "rmo"


def test_full_corpus_is_clean_when_slow(slow):
    """--slow / nightly: the whole 344-test corpus, zero violations,
    under every model spec."""
    if not slow:
        return
    result = run_conformance(load_corpus(), perturb=2, seed=0, explore=True)
    assert result.ok, [v.detail for v in result.violations]
    assert len(result.reports) >= 300
    for model in ("sc", "rmo"):
        result = run_conformance(load_corpus(), model=model,
                                 perturb=2, seed=0)
        assert result.ok, (model, [v.detail for v in result.violations])
