"""Cross-backend differential: one corpus slice, every protocol.

A stratified slice of the litmus corpus runs under all three coherence
backends at the one commit mode they share (plain OOO — baseline's
OOO_WB default reaches load-reorder outcomes the others cannot, so the
comparison pins the mode), over the same deterministic delay grid.

Backends are *architecturally* interchangeable, not cycle-for-cycle
identical: protocol timing may legally select different x86-TSO
outcomes for the same program (an rcp reversal refetches a line where
baseline's squash replays an older value).  The battery therefore
asserts the strongest properties that are actually protocol-
independent:

* no backend ever commits an outcome outside the operational TSO
  reference (zero sim-side violations per test per backend);
* the agreement is the norm, not the exception: a healthy fraction of
  the slice must produce bit-for-bit identical outcome sets across all
  three backends, so the comparison cannot rot into vacuity;
* where outcome sets do diverge, the divergence is pinned to the
  dependency-chain variants (``+dep`` families), whose extra
  address/data edges are exactly where protocol latency legally picks
  different TSO points.  A non-``dep`` test diverging fails loudly —
  that smells like a protocol bug, not architectural slack.
"""

import pytest

from repro.coherence.backend import backend_names
from repro.common.types import CommitMode
from repro.conform.differential import check_test
from repro.conform.runner import load_corpus, tier1_slice

#: Coarser than the tier-1 stride: three backends multiply the work.
STRIDE = 16


def _outcome_set(report):
    return {frozenset(values.items()) for values in report.sim_outcomes}


@pytest.fixture(scope="module")
def matrix():
    """``{test_name: (test, {backend: TestReport})}`` over the slice."""
    tests = tier1_slice(load_corpus(), stride=STRIDE)
    out = {}
    for test in tests:
        out[test.name] = (test, {
            backend: check_test(test, mode=CommitMode.OOO,
                                backend=backend, perturb=0)
            for backend in backend_names()
        })
    return out


def test_slice_is_meaningfully_sized(matrix):
    assert len(matrix) >= 20
    families = {test.family for test, __ in matrix.values()}
    assert len(families) >= 5


def test_no_backend_leaks_outside_tso(matrix):
    bad = [(name, backend, report.violations[0].detail)
           for name, (__, reports) in matrix.items()
           for backend, report in reports.items()
           if report.violations]
    assert not bad, bad


def test_every_backend_runs_the_same_grid(matrix):
    for name, (__, reports) in matrix.items():
        runs = {backend: report.sim_runs
                for backend, report in reports.items()}
        assert len(set(runs.values())) == 1, (name, runs)
        assert all(report.sim_outcomes for report in reports.values()), name


def test_exact_agreement_is_the_norm(matrix):
    agreeing = 0
    for name, (__, reports) in matrix.items():
        sets = {backend: _outcome_set(report)
                for backend, report in reports.items()}
        first = next(iter(sets.values()))
        if all(s == first for s in sets.values()):
            agreeing += 1
    # Every non-dependency test agrees today (13/29); leave headroom
    # for corpus growth but refuse a comparison that stopped comparing.
    assert agreeing >= len(matrix) // 3, (
        f"only {agreeing}/{len(matrix)} tests produce identical outcome "
        f"sets across backends — the equivalence battery lost its teeth")


def test_divergence_is_pinned_to_dependency_variants(matrix):
    divergent = []
    for name, (__, reports) in matrix.items():
        sets = {backend: _outcome_set(report)
                for backend, report in reports.items()}
        first = next(iter(sets.values()))
        if not all(s == first for s in sets.values()):
            divergent.append(name)
    stray = [name for name in divergent if "+dep" not in name]
    assert not stray, (
        f"outcome sets diverged across backends on non-dependency "
        f"tests {stray} — architectural slack only covers +dep "
        f"variants; anything else is a protocol bug")
