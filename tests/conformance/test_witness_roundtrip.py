"""Satellite: forbidden-outcome witness round-trip.

A failing litmus run (unsafe commit mode) exports a witness JSON; the
witness replays to the identical register outcome, reproduces the
checker violation, and arrives with a causal blame trace — through the
API and through ``repro conform --replay``.
"""

import json

import pytest

from repro.cli import main
from repro.common.types import CommitMode
from repro.conform.differential import check_test
from repro.conform.runner import load_corpus
from repro.conform.witness import (WITNESS_SCHEMA, load_witness,
                                   replay_witness, save_witness)


@pytest.fixture(scope="module")
def forbidden_witness():
    """One forbidden-outcome witness from CORR3+po+slow under unsafe
    commit (the reliable trigger for the paper's dangerous reorder)."""
    test = next(t for t in load_corpus() if t.name == "CORR3+po+slow")
    report = check_test(test, mode=CommitMode.OOO_UNSAFE, perturb=2, seed=0)
    witnesses = [v.witness for v in report.violations
                 if v.kind == "forbidden-outcome" and v.witness]
    assert witnesses, "unsafe mode no longer trips CORR3+po+slow"
    return witnesses[0]


def test_witness_payload_shape(forbidden_witness):
    payload = forbidden_witness
    assert payload["schema"] == WITNESS_SCHEMA
    assert payload["test"] == "CORR3+po+slow"
    assert payload["commit_mode"] == "ooo-unsafe"
    assert payload["litmus"].startswith("X86 CORR3+po+slow")
    assert len(payload["extra_delays"]) == 2
    assert payload["registers"]


def test_save_load_replay_roundtrip(tmp_path, forbidden_witness):
    path = save_witness(forbidden_witness, tmp_path)
    assert path.name == "CORR3+po+slow__forbidden-outcome.json"
    again = save_witness(forbidden_witness, tmp_path)
    assert again.name == "CORR3+po+slow__forbidden-outcome.1.json"

    loaded = load_witness(path)
    assert loaded == forbidden_witness

    report = replay_witness(path)
    assert report["schema"] == "repro-witness-replay/1"
    assert report["match"] is True
    assert report["registers"] == {k: int(v) for k, v in
                                   forbidden_witness["registers"].items()}
    assert report["forbidden_hit"] is True
    assert report["checker_violation"]
    assert report["cycles"] > 0
    blame = report["blame"]
    assert blame["top"], "replay must attach a causal blame trace"
    assert blame["graph"]["nodes"] > 0


def test_load_witness_rejects_wrong_schema(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "something-else/9"}))
    with pytest.raises(ValueError):
        load_witness(bad)


def test_cli_replay_exit_zero_on_match(tmp_path, forbidden_witness, capsys):
    path = save_witness(forbidden_witness, tmp_path)
    code = main(["conform", "--replay", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "match=True" in out
    assert "forbidden_hit=True" in out
    assert "blame:" in out


def test_cli_replay_exit_one_on_mismatch(tmp_path, forbidden_witness,
                                         capsys):
    tampered = dict(forbidden_witness)
    tampered["registers"] = {key: int(value) + 7 for key, value in
                             forbidden_witness["registers"].items()}
    path = save_witness(tampered, tmp_path)
    code = main(["conform", "--replay", str(path)])
    assert code == 1
    assert "match=False" in capsys.readouterr().out
