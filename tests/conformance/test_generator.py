"""The diy-style shape generator and the committed corpus."""

import pathlib

from repro.conform.generator import FAMILIES, generate_corpus
from repro.conform.litmus_format import parse_litmus, write_litmus
from repro.conform.model import operational_outcomes
from repro.conform.runner import load_corpus

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"


def by_name():
    return {test.name: test for test in generate_corpus()}


def test_corpus_size_and_uniqueness():
    tests = generate_corpus()
    assert len(tests) >= 300
    names = [test.name for test in tests]
    assert len(names) == len(set(names))


def test_every_test_validates_and_has_expectation():
    for test in generate_corpus():
        test.validate()  # raises on malformed shapes
        assert test.expect in ("forbidden", "allowed"), test.name
        assert test.expect_sc in ("forbidden", "allowed"), test.name
        assert test.expect_rmo in ("forbidden", "allowed"), test.name
        assert test.exists, test.name
        assert 2 <= len(test.threads) <= 6, test.name


def test_family_coverage():
    families = {test.family for test in generate_corpus()}
    for family in ("mp", "sb", "sb3", "sb4", "lb", "lb3", "lb4", "corr",
                   "corr3", "corr4", "wrc", "iriw", "iriw3", "irrwiw",
                   "isa2", "isa24", "rwc", "r", "s", "2+2w", "wrwc"):
        assert family in families
    assert len(families) >= 18
    assert len(FAMILIES) == len(families)


def test_wide_families_use_five_and_six_threads():
    by_family = {}
    for test in generate_corpus():
        by_family.setdefault(test.family, test)
    assert len(by_family["irrwiw"].threads) == 5
    assert len(by_family["iriw3"].threads) == 6


def test_committed_corpus_matches_generator():
    """tests/conformance/corpus/ is exactly the generator output."""
    generated = by_name()
    committed = {test.name: test for test in load_corpus(CORPUS_DIR)}
    assert committed.keys() == generated.keys()
    for name, test in generated.items():
        assert committed[name] == test, name
        path = CORPUS_DIR / f"{name}.litmus"
        assert path.read_text() == write_litmus(test), name


def test_store_load_fence_expectations():
    """SB rings flip to forbidden only when *every* st->ld gap is
    fenced; MP/LB/IRIW shapes are forbidden under plain po in TSO."""
    tests = by_name()
    assert tests["SB+mf+mf"].expect == "forbidden"
    assert tests["SB+po+mf"].expect == "allowed"
    assert tests["SB+mf+po"].expect == "allowed"
    assert tests["SB+po+po"].expect == "allowed"
    assert tests["MP+po+po"].expect == "forbidden"
    assert tests["LB+po+po"].expect == "forbidden"
    assert tests["IRIW+po+po"].expect == "forbidden"
    assert tests["RWC+po+po"].expect == "allowed"
    assert tests["RWC+po+mf"].expect == "forbidden"


def test_new_family_model_expectations():
    """Hand-pinned verdict triples (tso, sc, rmo) for the new shapes."""
    tests = by_name()
    expected = {
        # R: only the reading thread's st->ld gap matters under TSO.
        "R+po+po": ("allowed", "forbidden", "allowed"),
        "R+mf+po": ("allowed", "forbidden", "allowed"),
        "R+po+mf": ("forbidden", "forbidden", "allowed"),
        "R+mf+mf": ("forbidden", "forbidden", "forbidden"),
        # S / 2+2W / WRWC: cycles of WW/RW/RR edges, TSO-forbidden
        # under plain po.
        "S+po+po": ("forbidden", "forbidden", "allowed"),
        "S+mf+mf": ("forbidden", "forbidden", "forbidden"),
        "2+2W+po+po": ("forbidden", "forbidden", "allowed"),
        "2+2W+mf+mf": ("forbidden", "forbidden", "forbidden"),
        "WRWC+po+po": ("forbidden", "forbidden", "allowed"),
        "WRWC+mf+mf": ("forbidden", "forbidden", "forbidden"),
        # IRRWIW: the writer-reader closes the cycle; like RWC, its
        # fence decides the TSO verdict.
        "IRRWIW+po+po+po": ("allowed", "forbidden", "allowed"),
        "IRRWIW+po+po+mf": ("forbidden", "forbidden", "allowed"),
        "IRRWIW+mf+mf+mf": ("forbidden", "forbidden", "forbidden"),
        # IRIW3: pure-reader chains never need fences under TSO.
        "IRIW3+po+po+po": ("forbidden", "forbidden", "allowed"),
        "IRIW3+mf+mf+po": ("forbidden", "forbidden", "allowed"),
        "IRIW3+mf+mf+mf": ("forbidden", "forbidden", "forbidden"),
        # CORR4: per-location coherence holds under every model.
        "CORR4+po+po+po": ("forbidden", "forbidden", "forbidden"),
        "CORR4+slow+dep+po": ("forbidden", "forbidden", "forbidden"),
    }
    for name, (tso, sc, rmo) in expected.items():
        test = tests[name]
        assert (test.expect, test.expect_sc, test.expect_rmo) == \
            (tso, sc, rmo), name


def test_sc_forbids_everything():
    """Every corpus shape is a non-SC valuation by construction."""
    for test in generate_corpus():
        assert test.expect_sc == "forbidden", test.name


def test_rmo_forbidden_only_when_fully_fenced():
    """Outside the coherence families an RMO-forbidden test must carry
    mf in every decorated gap (never dep/slow, which are timing-only)."""
    for test in generate_corpus():
        # name = FAMILY.upper() + "+" + gaps; the family itself may
        # contain "+" (2+2w), so slice rather than partition.
        decorations = test.name[len(test.family) + 1:].split("+")
        if test.family.startswith("corr"):
            assert test.expect_rmo == "forbidden", test.name
        elif all(gap == "mf" for gap in decorations):
            assert test.expect_rmo == "forbidden", test.name
        else:
            assert test.expect_rmo == "allowed", test.name


def test_dep_slow_variants_never_change_expectation():
    """dep/slow decorate timing only; all three model verdicts must
    match the plain-po variant of the same shape, family by family."""
    tests = by_name()
    for name, test in tests.items():
        family, _, gaps = name.partition("+")
        plain = "+".join("po" if g in ("dep", "slow") else g
                         for g in gaps.split("+"))
        base = tests[f"{family}+{plain}"]
        assert test.expect == base.expect, name
        assert test.expect_sc == base.expect_sc, name
        assert test.expect_rmo == base.expect_rmo, name


def test_dep_slow_variants_share_operational_outcomes():
    """Spot-check: the operational machine sees dep/slow as plain
    loads, so the reachable-outcome sets coincide exactly."""
    tests = by_name()
    for plain, variant in (("MP+po+po", "MP+po+slow"),
                           ("MP+po+po", "MP+po+dep"),
                           ("CORR3+po+po", "CORR3+po+slow"),
                           ("IRIW+po+po", "IRIW+slow+po")):
        assert (operational_outcomes(tests[plain])
                == operational_outcomes(tests[variant])), variant
