"""The diy-style shape generator and the committed corpus."""

import pathlib

from repro.conform.generator import FAMILIES, generate_corpus
from repro.conform.litmus_format import parse_litmus, write_litmus
from repro.conform.model import operational_outcomes
from repro.conform.runner import load_corpus

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"


def by_name():
    return {test.name: test for test in generate_corpus()}


def test_corpus_size_and_uniqueness():
    tests = generate_corpus()
    assert len(tests) >= 150
    names = [test.name for test in tests]
    assert len(names) == len(set(names))


def test_every_test_validates_and_has_expectation():
    for test in generate_corpus():
        test.validate()  # raises on malformed shapes
        assert test.expect in ("forbidden", "allowed"), test.name
        assert test.exists, test.name
        assert 2 <= len(test.threads) <= 4, test.name


def test_family_coverage():
    families = {test.family for test in generate_corpus()}
    for family in ("mp", "sb", "sb3", "sb4", "lb", "lb3", "lb4", "corr",
                   "corr3", "wrc", "iriw", "isa2", "isa24", "rwc"):
        assert family in families
    assert len(FAMILIES) == len(families)


def test_committed_corpus_matches_generator():
    """tests/conformance/corpus/ is exactly the generator output."""
    generated = by_name()
    committed = {test.name: test for test in load_corpus(CORPUS_DIR)}
    assert committed.keys() == generated.keys()
    for name, test in generated.items():
        assert committed[name] == test, name
        path = CORPUS_DIR / f"{name}.litmus"
        assert path.read_text() == write_litmus(test), name


def test_store_load_fence_expectations():
    """SB rings flip to forbidden only when *every* st->ld gap is
    fenced; MP/LB/IRIW shapes are forbidden under plain po in TSO."""
    tests = by_name()
    assert tests["SB+mf+mf"].expect == "forbidden"
    assert tests["SB+po+mf"].expect == "allowed"
    assert tests["SB+mf+po"].expect == "allowed"
    assert tests["SB+po+po"].expect == "allowed"
    assert tests["MP+po+po"].expect == "forbidden"
    assert tests["LB+po+po"].expect == "forbidden"
    assert tests["IRIW+po+po"].expect == "forbidden"
    assert tests["RWC+po+po"].expect == "allowed"
    assert tests["RWC+po+mf"].expect == "forbidden"


def test_dep_slow_variants_never_change_expectation():
    """dep/slow decorate timing only; the TSO verdict must match the
    plain-po variant of the same shape, family by family."""
    tests = by_name()
    for name, test in tests.items():
        family, _, gaps = name.partition("+")
        plain = "+".join("po" if g in ("dep", "slow") else g
                         for g in gaps.split("+"))
        base = tests[f"{family}+{plain}"]
        assert test.expect == base.expect, name


def test_dep_slow_variants_share_operational_outcomes():
    """Spot-check: the operational machine sees dep/slow as plain
    loads, so the reachable-outcome sets coincide exactly."""
    tests = by_name()
    for plain, variant in (("MP+po+po", "MP+po+slow"),
                           ("MP+po+po", "MP+po+dep"),
                           ("CORR3+po+po", "CORR3+po+slow"),
                           ("IRIW+po+po", "IRIW+slow+po")):
        assert (operational_outcomes(tests[plain])
                == operational_outcomes(tests[variant])), variant
