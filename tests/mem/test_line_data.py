"""Versioned line data: reads, writes, snapshot isolation."""

from repro.mem.line_data import INITIAL, LineData


def test_initial_value_for_unwritten_offsets():
    data = LineData()
    assert data.read(0) == INITIAL == (0, 0)
    assert data.read(63) == (0, 0)


def test_write_then_read():
    data = LineData()
    data.write(8, version=3, value=99)
    assert data.read(8) == (3, 99)
    assert data.read(9) == (0, 0)  # byte-granular


def test_copy_is_a_snapshot():
    data = LineData()
    data.write(0, 1, 10)
    snapshot = data.copy()
    data.write(0, 2, 20)
    assert snapshot.read(0) == (1, 10)
    assert data.read(0) == (2, 20)
    snapshot.write(4, 5, 50)
    assert data.read(4) == (0, 0)


def test_merge_from_adopts_contents():
    a = LineData()
    a.write(0, 1, 10)
    b = LineData()
    b.write(4, 2, 20)
    a.merge_from(b)
    assert a.read(0) == (0, 0)  # fully replaced
    assert a.read(4) == (2, 20)


def test_repr_is_compact():
    data = LineData()
    data.write(4, 7, 42)
    assert "+4=v7:42" in repr(data)
