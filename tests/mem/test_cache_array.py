"""Set-associative array: LRU, victims, capacity."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.common.types import LineAddr
from repro.mem.cache_array import CacheArray, PresenceLRU


def test_insert_and_lookup():
    arr = CacheArray(sets=2, ways=2)
    arr.insert(LineAddr(0), "a")
    assert arr.lookup(LineAddr(0)) == "a"
    assert arr.lookup(LineAddr(2)) is None
    assert LineAddr(0) in arr


def test_lru_victim_is_least_recently_used():
    arr = CacheArray(sets=1, ways=2)
    arr.insert(LineAddr(0), "a")
    arr.insert(LineAddr(1), "b")
    arr.lookup(LineAddr(0))  # touch 0: 1 becomes LRU
    victim = arr.victim_for(LineAddr(2))
    assert victim == (LineAddr(1), "b")


def test_lookup_without_touch_keeps_lru():
    arr = CacheArray(sets=1, ways=2)
    arr.insert(LineAddr(0), "a")
    arr.insert(LineAddr(1), "b")
    arr.lookup(LineAddr(0), touch=False)
    victim = arr.victim_for(LineAddr(2))
    assert victim == (LineAddr(0), "a")


def test_no_victim_needed_when_space_or_present():
    arr = CacheArray(sets=1, ways=2)
    arr.insert(LineAddr(0), "a")
    assert arr.victim_for(LineAddr(1)) is None
    arr.insert(LineAddr(1), "b")
    assert arr.victim_for(LineAddr(0)) is None  # already resident


def test_insert_into_full_set_rejected():
    arr = CacheArray(sets=1, ways=1)
    arr.insert(LineAddr(0), "a")
    with pytest.raises(ConfigError):
        arr.insert(LineAddr(1), "b")


def test_replace_existing_line_allowed_when_full():
    arr = CacheArray(sets=1, ways=1)
    arr.insert(LineAddr(0), "a")
    arr.insert(LineAddr(0), "a2")
    assert arr.lookup(LineAddr(0)) == "a2"


def test_remove():
    arr = CacheArray(sets=1, ways=1)
    arr.insert(LineAddr(0), "a")
    assert arr.remove(LineAddr(0)) == "a"
    assert arr.remove(LineAddr(0)) is None
    assert arr.occupancy() == 0


def test_set_indexing_by_modulo():
    arr = CacheArray(sets=2, ways=1)
    arr.insert(LineAddr(0), "even")
    arr.insert(LineAddr(1), "odd")  # different set: no conflict
    assert arr.lookup(LineAddr(0)) == "even"
    assert arr.lookup(LineAddr(1)) == "odd"


def test_invalid_geometry():
    with pytest.raises(ConfigError):
        CacheArray(sets=0, ways=1)


@given(st.lists(st.integers(0, 31), min_size=1, max_size=100))
def test_occupancy_never_exceeds_capacity(addresses):
    arr = CacheArray(sets=4, ways=2)
    for addr in addresses:
        line = LineAddr(addr)
        victim = arr.victim_for(line)
        if victim is not None:
            arr.remove(victim[0])
        arr.insert(line, addr)
    assert arr.occupancy() <= 8
    per_set = {}
    for line, __ in arr.items():
        per_set.setdefault(int(line) % 4, []).append(line)
    assert all(len(lines) <= 2 for lines in per_set.values())


def test_presence_lru_evicts_silently():
    l1 = PresenceLRU(sets=1, ways=2)
    l1.touch(LineAddr(0))
    l1.touch(LineAddr(1))
    l1.touch(LineAddr(2))  # evicts 0
    assert LineAddr(0) not in l1
    assert LineAddr(1) in l1
    assert LineAddr(2) in l1
    l1.drop(LineAddr(1))
    assert LineAddr(1) not in l1
