"""MSHR file: capacity, SoS reservation, bypass coexistence."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.common.types import LineAddr
from repro.mem.mshr import MSHRFile


def test_allocate_and_get():
    mshrs = MSHRFile(entries=4, reserved_for_sos=1)
    entry = mshrs.allocate(LineAddr(1), "read")
    assert mshrs.get(LineAddr(1)) is entry
    assert mshrs.get(LineAddr(2)) is None


def test_regular_allocations_leave_sos_reserve():
    mshrs = MSHRFile(entries=3, reserved_for_sos=1)
    mshrs.allocate(LineAddr(1), "read")
    mshrs.allocate(LineAddr(2), "write")
    # Regular quota (2) exhausted; SoS quota still open.
    assert not mshrs.can_allocate()
    assert mshrs.can_allocate(sos=True)
    with pytest.raises(SimulationError):
        mshrs.allocate(LineAddr(3), "read")
    bypass = mshrs.allocate(LineAddr(3), "read", sos_bypass=True)
    assert bypass.is_sos_bypass
    assert not mshrs.can_allocate(sos=True)


def test_bypass_coexists_with_same_line_write():
    """Paper §3.5.2: an SoS load abandons its piggyback on a blocked
    write and launches a fresh read for the SAME line."""
    mshrs = MSHRFile(entries=4, reserved_for_sos=1)
    write = mshrs.allocate(LineAddr(7), "write")
    bypass = mshrs.allocate(LineAddr(7), "read", sos_bypass=True)
    assert mshrs.get(LineAddr(7)) is write  # primary lookup = the write
    assert bypass in mshrs.entries()
    mshrs.free(bypass)
    assert mshrs.get(LineAddr(7)) is write


def test_duplicate_primary_entry_rejected():
    mshrs = MSHRFile(entries=4, reserved_for_sos=1)
    mshrs.allocate(LineAddr(1), "read")
    with pytest.raises(SimulationError):
        mshrs.allocate(LineAddr(1), "write")


def test_free_unknown_entry_rejected():
    mshrs = MSHRFile(entries=4, reserved_for_sos=1)
    entry = mshrs.allocate(LineAddr(1), "read")
    mshrs.free(entry)
    with pytest.raises(SimulationError):
        mshrs.free(entry)


def test_reservation_must_leave_regular_space():
    with pytest.raises(ConfigError):
        MSHRFile(entries=2, reserved_for_sos=2)


def test_free_restores_capacity():
    mshrs = MSHRFile(entries=2, reserved_for_sos=1)
    entry = mshrs.allocate(LineAddr(1), "read")
    assert not mshrs.can_allocate()
    mshrs.free(entry)
    assert mshrs.can_allocate()
