"""FIFO store buffer: order, capacity, forwarding."""

import pytest

from repro.common.errors import SimulationError
from repro.common.types import LineAddr
from repro.mem.store_buffer import SBEntry, StoreBuffer


def entry(addr, version, value=0, seq=0):
    return SBEntry(byte_addr=addr, line=LineAddr(addr // 64),
                   offset=addr % 64, version=version, value=value, seq=seq)


def test_fifo_order():
    sb = StoreBuffer(4)
    sb.push(entry(0, 1))
    sb.push(entry(64, 2))
    assert sb.head().version == 1
    assert sb.pop_head().version == 1
    assert sb.head().version == 2


def test_capacity():
    sb = StoreBuffer(1)
    sb.push(entry(0, 1))
    assert sb.full
    with pytest.raises(SimulationError):
        sb.push(entry(4, 2))


def test_pop_empty_rejected():
    sb = StoreBuffer(1)
    with pytest.raises(SimulationError):
        sb.pop_head()
    assert sb.head() is None
    assert sb.empty


def test_forward_youngest_exact_match():
    sb = StoreBuffer(4)
    sb.push(entry(8, 1, value=10))
    sb.push(entry(8, 2, value=20))
    sb.push(entry(16, 3, value=30))
    fwd = sb.forward(8)
    assert fwd.version == 2  # youngest matching store
    assert sb.forward(24) is None
    assert sb.forward(9) is None  # exact byte-address match only


def test_has_line():
    sb = StoreBuffer(4)
    sb.push(entry(70, 1))
    assert sb.has_line(LineAddr(1))
    assert not sb.has_line(LineAddr(0))


def test_iteration_in_fifo_order():
    sb = StoreBuffer(4)
    for version in (1, 2, 3):
        sb.push(entry(version * 64, version))
    assert [e.version for e in sb] == [1, 2, 3]
    assert len(sb) == 3
