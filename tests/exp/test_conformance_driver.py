"""The ``conformance`` bench driver: payload shape and byte-stability.

The driver runs inline (engine-independent), so its text table and
rows must be identical no matter which engine configuration carries it
— the BENCH_conformance.json stability the roadmap demands across
serial, pooled, and cache-replay runs.
"""

import json

from repro.exp.bench import run_bench
from repro.exp.drivers import DRIVERS, BenchConfig, conformance_driver
from repro.exp.engine import ExperimentEngine

QUICK_CFG = BenchConfig(benches=("fft",), cores=4, scale=0.25)


def test_quick_scale_runs_the_tier1_slice():
    report = conformance_driver(QUICK_CFG, ExperimentEngine(1))
    assert report.name == "conformance"
    assert report.totals["sliced"] is True
    assert report.totals["ok"] is True
    assert report.totals["violations"] == 0
    assert 30 <= report.totals["tests"] < 100
    families = {row["family"] for row in report.rows if "family" in row}
    assert {"mp", "sb", "iriw", "corr3", "isa24"} <= families
    # Every backend of the matrix ran the same slice under its
    # strongest supported commit mode, sim ⊆ operational throughout.
    backends = report.totals["backends"]
    assert set(backends) == {"baseline", "rcp", "tardis"}
    assert backends["baseline"]["mode"] == "ooo-wb"
    assert backends["rcp"]["mode"] == "ooo"
    assert backends["tardis"]["mode"] == "ooo"
    for info in backends.values():
        assert info["ok"] is True
        assert info["tests"] == report.totals["tests"]
        assert info["violations"] == 0
    explorations = [row for row in report.rows if "exploration" in row]
    assert {(row["backend"], row["exploration"]) for row in explorations} \
        == {("baseline", "mp"), ("baseline", "sos"),
            ("rcp", "rcp_confirm"), ("rcp", "rcp_reversal"),
            ("tardis", "tardis_lease"), ("tardis", "tardis_recall")}
    for row in explorations:
        assert row["ok"] is True
        assert row["sleep_pruned"] > 0


def test_driver_is_engine_independent_and_byte_stable():
    serial = conformance_driver(QUICK_CFG, ExperimentEngine(1))
    pooled = conformance_driver(QUICK_CFG, ExperimentEngine(2))
    assert serial.text == pooled.text
    assert serial.rows == pooled.rows
    assert serial.totals == pooled.totals


def test_bench_json_round_trip(tmp_path):
    assert "conformance" in DRIVERS
    (run,) = run_bench(["conformance"], QUICK_CFG, tmp_path)
    payload = json.loads(run.json_path.read_text())
    assert payload["schema"] == "repro-bench/1"
    assert payload["name"] == "conformance"
    assert payload["totals"]["violations"] == 0
    assert payload["totals"]["ok"] is True
    assert run.txt_path.read_text().rstrip("\n") == run.report.text
