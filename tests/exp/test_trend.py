"""Bench trend tracking (``repro bench --trend``)."""

import json

import pytest

from repro.exp.trend import (collect_metrics, diff_generations, diff_metrics,
                             direction, is_host_metric, render_trend)


# ------------------------------------------------------------ flattening
def test_collect_metrics_flattens_nested_payloads():
    payload = {
        "schema": "repro-bench/1",  # structural, skipped
        "config": {"cores": 16},
        "rows": [{"cycles": 100}, {"cycles": 200}],
        "ok": True,  # bools are not metrics
    }
    assert collect_metrics(payload) == {
        "config.cores": 16.0,
        "rows[0].cycles": 100.0,
        "rows[1].cycles": 200.0,
    }


def test_collect_metrics_key_order_is_deterministic():
    a = collect_metrics({"b": 1, "a": {"z": 2, "y": 3}})
    b = collect_metrics({"a": {"y": 3, "z": 2}, "b": 1})
    assert list(a) == list(b) == ["a.y", "a.z", "b"]


# ---------------------------------------------------------- classification
def test_host_vs_model_classification():
    assert is_host_metric("suite.wall_seconds")
    assert is_host_metric("benchmarks.litmus.sims_per_sec")
    assert is_host_metric("rows[3].alloc_peak_kb")
    assert not is_host_metric("rows[3].cycles")
    assert not is_host_metric("totals.messages")


def test_direction_heuristics():
    assert direction("benchmarks.litmus.sims_per_sec") == 1
    assert direction("rows[0].cycles") == -1
    assert direction("totals.flit_hops") == -1
    assert direction("config.cores") == 0  # unknown: neutral drift


# ----------------------------------------------------------------- diffing
def test_model_drift_reported_at_any_magnitude():
    moves = diff_metrics({"rows[0].cycles": 1000.0},
                         {"rows[0].cycles": 1001.0})
    assert len(moves) == 1
    assert moves[0]["regression"] is True  # cycles up = bad
    assert moves[0]["host"] is False


def test_host_noise_below_threshold_filtered():
    old = {"suite.wall_seconds": 10.0, "x.sims_per_sec": 100.0}
    new = {"suite.wall_seconds": 10.2, "x.sims_per_sec": 80.0}
    moves = diff_metrics(old, new, threshold=0.05)
    assert [m["key"] for m in moves] == ["x.sims_per_sec"]
    assert moves[0]["regression"] is True  # throughput down = bad


def test_improvement_is_not_a_regression():
    moves = diff_metrics({"a.cycles": 200.0}, {"a.cycles": 150.0})
    assert moves[0]["regression"] is False


def test_equal_values_produce_no_moves():
    assert diff_metrics({"a.cycles": 5.0}, {"a.cycles": 5.0}) == []


# ------------------------------------------------------------ generations
def _write_gen(path, name, payload):
    path.mkdir(parents=True, exist_ok=True)
    (path / name).write_text(json.dumps(payload))


def test_diff_generations_end_to_end(tmp_path):
    old, new = tmp_path / "old", tmp_path / "new"
    _write_gen(old, "BENCH_a.json", {"totals": {"cycles": 100}})
    _write_gen(new, "BENCH_a.json", {"totals": {"cycles": 120}})
    _write_gen(old, "BENCH_gone.json", {"totals": {"cycles": 1}})
    _write_gen(new, "BENCH_new.json", {"totals": {"cycles": 2}})
    payload = diff_generations(old, new)
    assert payload["schema"] == "repro-trend/1"
    entry = payload["files"]["BENCH_a.json"]
    assert entry["regressions"] == 1
    assert entry["moves"][0]["key"] == "totals.cycles"
    assert payload["only_in_old"] == ["BENCH_gone.json"]
    assert payload["only_in_new"] == ["BENCH_new.json"]

    text = render_trend(payload)
    assert "REGRESSION" in text
    assert "totals.cycles: 100 -> 120" in text
    assert "total regressions: 1" in text
    assert "only in old generation" in text


def test_diff_generations_requires_old_artifacts(tmp_path):
    (tmp_path / "empty").mkdir()
    _write_gen(tmp_path / "new", "BENCH_a.json", {})
    with pytest.raises(ValueError, match="no BENCH"):
        diff_generations(tmp_path / "empty", tmp_path / "new")


def test_render_trend_reports_no_movement(tmp_path):
    old, new = tmp_path / "a", tmp_path / "b"
    _write_gen(old, "BENCH_a.json", {"totals": {"cycles": 7}})
    _write_gen(new, "BENCH_a.json", {"totals": {"cycles": 7}})
    text = render_trend(diff_generations(old, new))
    assert "no movement" in text
    assert "total regressions: 0" in text
