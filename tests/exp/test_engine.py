"""ExperimentEngine: serial/pool/cache resolution, retries, degradation."""

import concurrent.futures

import pytest

from repro.common.types import CommitMode
from repro.exp.cache import ResultCache
from repro.exp.cells import Cell
from repro.exp.engine import ExperimentEngine, execute_cell
from repro.workloads.trace import AddressSpace, TraceBuilder

from ..exp.test_cache import small_cell


def trace_cell(key="t", delay=0):
    space = AddressSpace()
    x = space.new_var("x")
    t0 = TraceBuilder()
    if delay:
        t0.compute(latency=delay)
    t0.store(x, 1)
    t1 = TraceBuilder()
    t1.load(t1.reg(), x)
    params = small_cell().params
    return Cell.from_traces(key, "two-core-racer",
                            [t0.build(), t1.build()], params)


def test_serial_run_matches_direct_execution():
    cell = small_cell()
    run = ExperimentEngine(workers=0).run([cell])
    assert run.results()[cell.key].to_json() == execute_cell(cell).to_json()
    assert run.source_counts() == {"cache": 0, "pool": 0, "serial": 1}


def test_trace_cells_run_and_differ_by_timing():
    cells = [trace_cell("a", delay=0), trace_cell("b", delay=400)]
    run = ExperimentEngine().run(cells)
    results = run.results()
    assert results["a"].cycles != results["b"].cycles


def test_duplicate_keys_rejected():
    with pytest.raises(ValueError, match="duplicate cell keys"):
        ExperimentEngine().run([small_cell(), small_cell()])


def test_cache_first_then_serial(tmp_path):
    cache = ResultCache(tmp_path, version="v")
    engine = ExperimentEngine(cache=cache)
    cell = small_cell()
    cold = engine.run([cell])
    assert cold.source_counts()["serial"] == 1
    assert cold.cache_misses == 1
    warm = engine.run([cell])
    assert warm.source_counts() == {"cache": 1, "pool": 0, "serial": 0}
    assert warm.cache_hits == 1
    assert (warm.results()[cell.key].to_json()
            == cold.results()[cell.key].to_json())
    # The cache hit reports the original execution cost.
    assert warm.executed_seconds == pytest.approx(cold.executed_seconds)


def test_pool_run_resolves_all_cells():
    cells = [small_cell(key="a"),
             small_cell(key="b", mode=CommitMode.IN_ORDER)]
    run = ExperimentEngine(workers=2, timeout=300.0).run(cells)
    assert set(run.results()) == {"a", "b"}
    # Whatever path executed them, the data is normalized identically.
    serial = ExperimentEngine().run(cells)
    for key in ("a", "b"):
        assert (run.results()[key].to_json()
                == serial.results()[key].to_json())


def test_timeout_falls_back_to_serial(monkeypatch):
    """A pool whose futures always time out must still resolve every
    cell — serially, after the retry rounds."""

    class StuckFuture:
        def result(self, timeout=None):
            raise concurrent.futures.TimeoutError()

        def cancel(self):
            return False

    class StuckPool:
        def __init__(self, max_workers=None):
            pass

        def submit(self, fn, *args):
            return StuckFuture()

        def shutdown(self, wait=True, cancel_futures=False):
            pass

    monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                        StuckPool)
    cells = [trace_cell("a"), trace_cell("b", delay=30)]
    run = ExperimentEngine(workers=2, timeout=0.01, retries=1).run(cells)
    assert set(run.results()) == {"a", "b"}
    assert run.timeouts >= 2
    assert run.source_counts()["serial"] == 2
    assert run.retried >= 2


def test_pool_creation_failure_degrades_to_serial(monkeypatch):
    def broken_pool(*args, **kwargs):
        raise OSError("no fork for you")

    monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                        broken_pool)
    cells = [trace_cell("a"), trace_cell("b", delay=30)]
    run = ExperimentEngine(workers=4).run(cells)
    assert run.degraded
    assert run.source_counts()["serial"] == 2


def test_worker_exception_retries_serially_with_context(monkeypatch):
    """A cell that raises in the pool re-raises serially (clean
    traceback), not as a swallowed pool error."""

    class FailingFuture:
        def result(self, timeout=None):
            raise RuntimeError("worker blew up")

        def cancel(self):
            return False

    class FailingPool:
        def __init__(self, max_workers=None):
            pass

        def submit(self, fn, *args):
            return FailingFuture()

        def shutdown(self, wait=True, cancel_futures=False):
            pass

    monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                        FailingPool)
    cells = [trace_cell("a"), trace_cell("b", delay=30)]
    run = ExperimentEngine(workers=2, retries=0).run(cells)
    # The serial fallback executed the real simulation fine.
    assert set(run.results()) == {"a", "b"}
    assert run.source_counts()["serial"] == 2


def test_stats_shape():
    run = ExperimentEngine().run([trace_cell("a")])
    stats = run.stats()
    assert stats["cells"] == 1
    assert stats["sources"]["serial"] == 1
    assert stats["wall_seconds"] > 0
    assert stats["speedup_vs_serial"] is not None
