"""ResultCache: content addressing, round-trips, invalidation."""

import dataclasses
import json

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.exp.cache import ResultCache, code_version
from repro.exp.cells import Cell
from repro.exp.engine import execute_cell


def small_cell(key="c", workload="fft", scale=0.1, cores=4,
               mode=CommitMode.OOO_WB):
    params = table6_system("SLM", num_cores=cores, commit_mode=mode)
    return Cell(key=key, workload=workload, num_threads=cores, scale=scale,
                params=params)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache", version="test-version")


def test_round_trip_is_byte_identical(cache):
    cell = small_cell()
    live = execute_cell(cell)
    cache.store(cell, live, exec_seconds=1.25)
    hit = cache.load(cell)
    assert hit is not None
    assert hit.exec_seconds == 1.25
    assert hit.result.to_json() == live.to_json()


def test_miss_costs_nothing_and_counts(cache):
    assert cache.load(small_cell()) is None
    assert cache.stats()["misses"] == 1
    assert cache.stats()["hits"] == 0


def test_key_sensitivity(cache):
    base = small_cell()
    assert cache.key_for(base) == cache.key_for(small_cell())
    # Any outcome-relevant field must change the key; the display key
    # must not (it's presentation, not content).
    assert cache.key_for(base) != cache.key_for(small_cell(scale=0.2))
    assert cache.key_for(base) != cache.key_for(small_cell(workload="radix"))
    assert cache.key_for(base) != cache.key_for(
        small_cell(mode=CommitMode.IN_ORDER))
    assert cache.key_for(base) == cache.key_for(small_cell(key="renamed"))


def test_params_change_keys(cache):
    base = small_cell()
    tweaked_params = dataclasses.replace(
        base.params, cache=dataclasses.replace(base.params.cache,
                                               mshr_entries=8))
    tweaked = dataclasses.replace(base, params=tweaked_params)
    assert cache.key_for(base) != cache.key_for(tweaked)


def test_code_version_invalidates(tmp_path):
    cell = small_cell()
    old = ResultCache(tmp_path / "c", version="v-old")
    new = ResultCache(tmp_path / "c", version="v-new")
    assert old.key_for(cell) != new.key_for(cell)
    old.store(cell, execute_cell(cell), exec_seconds=0.5)
    assert new.load(cell) is None  # different key -> miss, not staleness


def test_corrupted_entry_is_a_miss(cache):
    cell = small_cell()
    cache.store(cell, execute_cell(cell), exec_seconds=0.5)
    path = cache._path(cache.key_for(cell))
    path.write_text("{ not json")
    assert cache.load(cell) is None
    assert cache.stats()["invalid"] == 1
    # A fresh store repairs it.
    cache.store(cell, execute_cell(cell), exec_seconds=0.5)
    assert cache.load(cell) is not None


def test_entry_schema_on_disk(cache):
    cell = small_cell()
    cache.store(cell, execute_cell(cell), exec_seconds=0.5)
    payload = json.loads(cache._path(cache.key_for(cell)).read_text())
    assert payload["schema"] == "repro-cache/1"
    assert payload["code_version"] == "test-version"
    assert payload["cell"]["workload"] == "fft"


def test_real_code_version_is_stable():
    assert code_version() == code_version()
    assert len(code_version()) == 64
