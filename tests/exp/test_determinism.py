"""Determinism: serial, worker-pool, and cache-replay runs are
byte-identical.

One workload per sharing-pattern family (streaming/transpose: fft;
stencil: ocean_ncp; lock-heavy: streamcluster; read-mostly private:
swaptions), each resolved three ways through the engine.  The
``SimResult.to_json`` payload — every stat, every derived row — must
match byte for byte, which is what lets the cache and the pool
substitute for serial execution without changing any committed table.
"""

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.exp.cache import ResultCache
from repro.exp.cells import Cell
from repro.exp.engine import ExperimentEngine

FAMILY_WORKLOADS = ("fft", "ocean_ncp", "streamcluster", "swaptions")


def cell_for(name):
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    return Cell(key=name, workload=name, num_threads=4, scale=0.25,
                params=params)


@pytest.mark.parametrize("name", FAMILY_WORKLOADS)
def test_serial_pool_cache_byte_identical(name, tmp_path):
    cell = cell_for(name)
    serial = ExperimentEngine(workers=0).run([cell])
    baseline = serial.results()[name].to_json()

    pooled = ExperimentEngine(workers=2, timeout=300.0).run([cell])
    assert pooled.results()[name].to_json() == baseline

    cache = ResultCache(tmp_path, version="pinned")
    cold = ExperimentEngine(cache=cache).run([cell])
    assert cold.results()[name].to_json() == baseline
    replay = ExperimentEngine(cache=cache).run([cell])
    assert replay.source_counts()["cache"] == 1
    assert replay.results()[name].to_json() == baseline


#: Telemetry targets: directed scenarios + the stratified litmus slice
#: (one corpus test per family) — the set the acceptance bar names.
def _telemetry_targets():
    from repro.exp.drivers import _litmus_slice
    from repro.obs.scenarios import LITMUS_PREFIX

    return ["mp", "sos"] + [LITMUS_PREFIX + name for name in _litmus_slice()]


def test_telemetry_serial_pool_cache_byte_identical(tmp_path):
    """The ``repro-metrics/1`` payload rides inside ``SimResult``, so it
    must satisfy the same contract as every other stat: byte-identical
    whether the cell ran serially, in a worker pool, or out of the
    result cache."""
    from repro.obs.scenarios import scenario_traces

    cells = []
    for name in _telemetry_targets():
        traces = scenario_traces(name)
        # 5/6-thread litmus families need the next mesh size up.
        params = table6_system("SLM",
                               num_cores=4 if len(traces) <= 4 else 8,
                               commit_mode=CommitMode.OOO_WB)
        cells.append(Cell.from_traces(name, name, traces, params,
                                      sample=100))

    serial = ExperimentEngine(workers=0).run(cells)
    baselines = {cell.key: serial.results()[cell.key].to_json()
                 for cell in cells}
    for key, result in serial.results().items():
        assert result.telemetry is not None
        assert result.telemetry["schema"] == "repro-metrics/1"

    pooled = ExperimentEngine(workers=2, timeout=300.0).run(cells)
    for key, baseline in baselines.items():
        assert pooled.results()[key].to_json() == baseline

    cache = ResultCache(tmp_path, version="pinned")
    ExperimentEngine(cache=cache).run(cells)
    replay = ExperimentEngine(cache=cache).run(cells)
    assert replay.source_counts()["cache"] == len(cells)
    for key, baseline in baselines.items():
        assert replay.results()[key].to_json() == baseline


def test_same_seed_same_workload_object():
    """The generator layer itself is deterministic (the engine relies
    on regenerating workloads inside workers)."""
    from repro.workloads import ALL_WORKLOADS

    a = ALL_WORKLOADS["fft"](num_threads=4, scale=0.25)
    b = ALL_WORKLOADS["fft"](num_threads=4, scale=0.25)
    assert a.traces == b.traces
