"""Determinism: serial, worker-pool, and cache-replay runs are
byte-identical.

One workload per sharing-pattern family (streaming/transpose: fft;
stencil: ocean_ncp; lock-heavy: streamcluster; read-mostly private:
swaptions), each resolved three ways through the engine.  The
``SimResult.to_json`` payload — every stat, every derived row — must
match byte for byte, which is what lets the cache and the pool
substitute for serial execution without changing any committed table.
"""

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.exp.cache import ResultCache
from repro.exp.cells import Cell
from repro.exp.engine import ExperimentEngine

FAMILY_WORKLOADS = ("fft", "ocean_ncp", "streamcluster", "swaptions")


def cell_for(name):
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    return Cell(key=name, workload=name, num_threads=4, scale=0.25,
                params=params)


@pytest.mark.parametrize("name", FAMILY_WORKLOADS)
def test_serial_pool_cache_byte_identical(name, tmp_path):
    cell = cell_for(name)
    serial = ExperimentEngine(workers=0).run([cell])
    baseline = serial.results()[name].to_json()

    pooled = ExperimentEngine(workers=2, timeout=300.0).run([cell])
    assert pooled.results()[name].to_json() == baseline

    cache = ResultCache(tmp_path, version="pinned")
    cold = ExperimentEngine(cache=cache).run([cell])
    assert cold.results()[name].to_json() == baseline
    replay = ExperimentEngine(cache=cache).run([cell])
    assert replay.source_counts()["cache"] == 1
    assert replay.results()[name].to_json() == baseline


def test_same_seed_same_workload_object():
    """The generator layer itself is deterministic (the engine relies
    on regenerating workloads inside workers)."""
    from repro.workloads import ALL_WORKLOADS

    a = ALL_WORKLOADS["fft"](num_threads=4, scale=0.25)
    b = ALL_WORKLOADS["fft"](num_threads=4, scale=0.25)
    assert a.traces == b.traces
