"""``run_bench``: files written, payload schema, cache behaviour."""

import json

import pytest

from repro.exp.bench import (QUICK_BENCH_SET, QUICK_CORES, QUICK_SCALE,
                             run_bench)
from repro.exp.drivers import DRIVERS, BenchConfig

QUICK_CFG = BenchConfig(benches=QUICK_BENCH_SET, cores=QUICK_CORES,
                        scale=QUICK_SCALE)


def test_unknown_driver_rejected(tmp_path):
    with pytest.raises(KeyError, match="unknown bench drivers"):
        run_bench(["no_such_driver"], QUICK_CFG, tmp_path)


def test_writes_txt_and_json(tmp_path):
    runs = run_bench(["table2", "table6"], QUICK_CFG, tmp_path)
    assert [(r.report.name) for r in runs] == ["table2", "table6"]
    for run in runs:
        assert run.txt_path.exists()
        assert run.txt_path.read_text().rstrip("\n") == run.report.text
        payload = json.loads(run.json_path.read_text())
        assert payload["schema"] == "repro-bench/1"
        assert payload["name"] == run.report.name
        assert payload["rows"] == run.report.rows
        assert payload["config"]["cores"] == QUICK_CORES
        assert payload["totals"]["rows"] == len(run.report.rows)
        assert len(payload["code_version"]) == 64


def test_engine_driver_payload_has_run_stats(tmp_path):
    cfg = BenchConfig(benches=("fft",), cores=4, scale=0.1)
    (run,) = run_bench(["fig9"], cfg, tmp_path)
    payload = json.loads(run.json_path.read_text())
    assert payload["engine"]["sources"]["serial"] == 2  # base + wb
    assert payload["executed_seconds"] > 0
    assert payload["totals"]["cells"] == 2
    assert payload["totals"]["simulated_cycles"] > 0


def test_cache_round_trip_is_byte_identical(tmp_path):
    cfg = BenchConfig(benches=("fft",), cores=4, scale=0.1)
    out1, out2 = tmp_path / "o1", tmp_path / "o2"
    cache = tmp_path / "cache"
    (cold,) = run_bench(["fig9"], cfg, out1, cache_dir=cache)
    (warm,) = run_bench(["fig9"], cfg, out2, cache_dir=cache)
    assert warm.txt_path.read_text() == cold.txt_path.read_text()
    warm_payload = json.loads(warm.json_path.read_text())
    assert warm_payload["cache"]["hits"] == 2
    assert warm_payload["rows"] == json.loads(
        cold.json_path.read_text())["rows"]


def test_blame_driver_payload_schema(tmp_path):
    (run,) = run_bench(["blame"], QUICK_CFG, tmp_path)
    payload = json.loads(run.json_path.read_text())
    assert payload["schema"] == "repro-bench/1"
    assert payload["name"] == "blame"
    data_rows = [r for r in payload["rows"] if r["mode"] != "delta"]
    delta_rows = [r for r in payload["rows"] if r["mode"] == "delta"]
    assert {r["scenario"] for r in data_rows} == {"mp", "sos"}
    assert {r["mode"] for r in data_rows} == {"ooo", "ooo-wb"}
    for row in data_rows:
        assert row["cycles"] > 0
        assert row["write_stalls"]["coverage"] >= 0.95
        assert row["commit_stalls"]["total_cycles"] >= 0
    # mp under WritersBlock must blame the deferred-Ack chain on top.
    (mp_wb,) = [r for r in data_rows
                if r["scenario"] == "mp" and r["mode"] == "ooo-wb"]
    assert mp_wb["top_blame"].startswith("writersblock.deferred_ack")
    # One delta row per scenario, with the WB-vs-ablated stall budget.
    assert {r["scenario"] for r in delta_rows} == {"mp", "sos"}
    for row in delta_rows:
        assert {"cycles_delta", "write_stall_delta",
                "commit_stall_delta"} <= set(row)
    totals = payload["totals"]["write_stall_cause_cycles"]
    assert any(name.startswith("writersblock.deferred_ack")
               for name in totals)


def test_every_driver_is_registered():
    assert set(DRIVERS) == {
        "fig8", "fig9", "fig10", "table1", "table2", "table6",
        "sweep_lq", "ecl_inorder", "ablation_ldt", "ablation_evictions",
        "ablation_network", "ablation_unsafe", "blame", "conformance",
        "models", "metrics", "coverage",
    }
