"""Trace builder and address space."""

import pytest

from repro.common.errors import ConfigError
from repro.common.types import InstrType
from repro.workloads.trace import AddressSpace, TraceBuilder, ZERO_REG


def test_address_space_one_var_per_line():
    space = AddressSpace(line_bytes=64)
    x = space.new_var("x")
    y = space.new_var("y")
    assert x // 64 != y // 64
    assert space["x"] == x


def test_address_space_false_sharing():
    space = AddressSpace(line_bytes=64)
    x = space.new_var("x")
    x2 = space.new_var("x2", share_line_with="x", offset=8)
    assert x2 // 64 == x // 64
    assert x2 == x + 8


def test_duplicate_var_rejected():
    space = AddressSpace()
    space.new_var("x")
    with pytest.raises(ConfigError):
        space.new_var("x")


def test_new_array_line_per_element():
    space = AddressSpace(line_bytes=64)
    addrs = space.new_array("a", 4)
    assert len({a // 64 for a in addrs}) == 4


def test_new_array_packed_elements_share_lines():
    space = AddressSpace(line_bytes=64)
    addrs = space.new_array("a", 8, stride=16)
    lines = [a // 64 for a in addrs]
    assert len(set(lines)) == 2  # 4 elements per line
    assert lines[0] == lines[3] != lines[4]


def test_builder_emits_in_order_with_fresh_regs():
    t = TraceBuilder()
    r1 = t.reg()
    r2 = t.reg()
    assert r1 != r2 != ZERO_REG
    t.load(r1, 0x100)
    t.store(0x140, 7)
    t.addi(r2, r1, 1)
    trace = t.build()
    assert [i.itype for i in trace] == [InstrType.LOAD, InstrType.STORE,
                                        InstrType.ALU]


def test_branch_fixup():
    t = TraceBuilder()
    r = t.reg()
    t.mov(r, 0)
    branch = t.bnez(r, 0)
    t.nop()
    t.fix_target(branch, t.here)
    trace = t.build()
    assert trace[branch].target == 3


def test_fix_target_on_non_branch_rejected():
    t = TraceBuilder()
    idx = t.nop()
    with pytest.raises(ConfigError):
        t.fix_target(idx, 0)


def test_build_validates_targets():
    t = TraceBuilder()
    r = t.reg()
    t.mov(r, 1)
    t.bnez(r, 99)
    with pytest.raises(ConfigError):
        t.build()


def test_jump_is_always_taken_branch_on_zero_reg():
    t = TraceBuilder()
    idx = t.jump(0)
    instr = t.build()[idx]
    assert instr.itype is InstrType.BRANCH
    assert instr.srcs == (ZERO_REG,)
    assert instr.predict_taken
