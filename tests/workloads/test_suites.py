"""Benchmark suite generators: structure and determinism."""

import pytest

from repro.workloads import ALL_WORKLOADS, PARSEC_WORKLOADS, SPLASH_WORKLOADS


def test_suite_inventory():
    assert len(SPLASH_WORKLOADS) == 14
    assert len(PARSEC_WORKLOADS) == 11
    assert set(ALL_WORKLOADS) == set(SPLASH_WORKLOADS) | set(PARSEC_WORKLOADS)
    # The names the paper's evaluation text calls out must exist.
    for name in ("fft", "lu_ncb", "ocean_ncp", "bodytrack", "streamcluster",
                 "freqmine"):
        assert name in ALL_WORKLOADS


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_generator_builds_requested_thread_count(name):
    workload = ALL_WORKLOADS[name](num_threads=4, scale=0.2)
    assert workload.num_threads == 4
    assert workload.name == name
    assert workload.total_instructions() > 0
    assert workload.description


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_generator_is_deterministic(name):
    a = ALL_WORKLOADS[name](num_threads=4, scale=0.2, seed=5)
    b = ALL_WORKLOADS[name](num_threads=4, scale=0.2, seed=5)
    assert a.traces == b.traces


def test_scale_grows_the_workload():
    small = ALL_WORKLOADS["fft"](num_threads=4, scale=0.2)
    large = ALL_WORKLOADS["fft"](num_threads=4, scale=1.0)
    assert large.total_instructions() > small.total_instructions()


def test_different_seeds_differ():
    a = ALL_WORKLOADS["barnes"](num_threads=4, scale=0.3, seed=1)
    b = ALL_WORKLOADS["barnes"](num_threads=4, scale=0.3, seed=2)
    assert a.traces != b.traces
