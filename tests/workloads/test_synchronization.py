"""Locks and barriers, executed on the real simulator."""

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.sim.system import MulticoreSystem
from repro.workloads.synchronization import (
    Barrier,
    lock_acquire,
    lock_release,
    spin_until_set,
)
from repro.workloads.trace import AddressSpace, TraceBuilder


def run(traces, num_cores=4, mode=CommitMode.OOO_WB):
    params = table6_system("SLM", num_cores=num_cores, commit_mode=mode)
    system = MulticoreSystem(params)
    system.load_program(traces)
    return system, system.run()


@pytest.mark.parametrize("mode", [CommitMode.IN_ORDER, CommitMode.OOO,
                                  CommitMode.OOO_WB])
def test_lock_provides_mutual_exclusion(mode):
    """4 threads x 5 locked increments each = exactly 20."""
    space = AddressSpace()
    lock = space.new_var("lock")
    counter = space.new_var("counter")
    traces = []
    for __ in range(4):
        t = TraceBuilder()
        for __i in range(5):
            lock_acquire(t, lock)
            r_old = t.reg()
            r_new = t.reg()
            t.load(r_old, counter)
            t.addi(r_new, r_old, 1)
            t.store(counter, value_reg=r_new)
            lock_release(t, lock)
        traces.append(t.build())
    system, result = run(traces, mode=mode)
    # Read the final value through a fresh observer load.
    final = max(
        (log.value_of(e.version_read)
         for e in result.log.events if e.kind == "ld" and e.addr == counter),
        default=0,
    ) if (log := result.log) else 0
    # The last store's value is 20 (each increment read the prior value).
    last_store = max(
        (e for e in result.log.events if e.kind == "st" and e.addr == counter),
        key=lambda e: e.cycle,
    )
    assert result.log.value_of(last_store.version_written) == 20


def test_barrier_no_thread_proceeds_early():
    space = AddressSpace()
    before = space.new_var("before")
    after = space.new_var("after")
    bar = Barrier(space, "b", 4)
    episode = bar.next_episode()
    traces = []
    for tid in range(4):
        t = TraceBuilder()
        if tid == 0:
            t.compute(latency=300)  # straggler
            t.store(before, 1)
        episode.emit(t)
        if tid == 1:
            t.store(after, 1)
        traces.append(t.build())
    system, result = run(traces)
    before_cycle = next(e.cycle for e in result.log.events
                        if e.kind == "st" and e.addr == before)
    after_cycle = next(e.cycle for e in result.log.events
                       if e.kind == "st" and e.addr == after)
    assert after_cycle > before_cycle


def test_spin_until_set_sees_value():
    space = AddressSpace()
    flag = space.new_var("flag")
    t0 = TraceBuilder()
    spin_until_set(t0, flag, expected=1)
    t1 = TraceBuilder()
    t1.compute(latency=150)
    t1.store(flag, 1)
    system, result = run([t0.build(), t1.build()])
    assert system.cores[0].done
    assert system.cores[1].done


def test_contended_lock_serializes_all_threads():
    """Every TAS that succeeds observed 0; failures observed 1."""
    space = AddressSpace()
    lock = space.new_var("lock")
    traces = []
    for __ in range(4):
        t = TraceBuilder()
        lock_acquire(t, lock)
        t.compute(latency=30)
        lock_release(t, lock)
        traces.append(t.build())
    system, result = run(traces)
    acquisitions = [e for e in result.log.events if e.kind == "at"]
    winners = [e for e in acquisitions if result.log.value_of(e.version_read) == 0]
    assert len(winners) == 4  # each thread eventually acquired once
