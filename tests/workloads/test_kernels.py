"""Verified kernels: functional results through the memory system."""

import dataclasses

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.sim.system import MulticoreSystem
from repro.workloads.kernels import ALL_KERNELS

MODES = [CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB]


def run_kernel(builder, mode=CommitMode.OOO_WB, core_type="ooo"):
    workload, verify = builder()
    params = table6_system("SLM", num_cores=4, commit_mode=mode)
    if core_type != "ooo":
        params = dataclasses.replace(
            params, core_type=core_type,
            writers_block=core_type == "inorder-ecl",
            commit_mode=CommitMode.IN_ORDER)
    system = MulticoreSystem(params)
    system.load_program(workload.traces)
    result = system.run()
    verify(system, result)
    return result


@pytest.mark.parametrize("name", sorted(ALL_KERNELS))
@pytest.mark.parametrize("mode", MODES)
def test_kernel_correct_under_all_commit_modes(name, mode):
    run_kernel(ALL_KERNELS[name], mode=mode)


@pytest.mark.parametrize("name", sorted(ALL_KERNELS))
@pytest.mark.parametrize("core_type", ["inorder", "inorder-ecl"])
def test_kernel_correct_on_inorder_cores(name, core_type):
    run_kernel(ALL_KERNELS[name], core_type=core_type)


def test_locked_sum_value_flows_through_loads():
    result = run_kernel(ALL_KERNELS["locked-sum"])
    # 4 threads x 6 increments: 24 RMW-style critical sections.
    stores = [e for e in result.log.events if e.kind == "st"]
    assert len(stores) >= 24
