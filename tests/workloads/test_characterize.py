"""Static workload characterization."""

from repro.workloads import ALL_WORKLOADS
from repro.workloads.characterize import characterize
from repro.workloads.trace import AddressSpace, TraceBuilder, Workload


def make_workload(traces, name="test"):
    return Workload(name=name, traces=traces)


def test_mix_and_counts():
    space = AddressSpace()
    x = space.new_var("x")
    t = TraceBuilder()
    t.load(t.reg(), x)
    t.store(x, 1)
    t.compute()
    t.faa(t.reg(), x, 1)
    profile = characterize(make_workload([t.build()]))
    assert profile.total_instructions == 4
    assert profile.static_loads == 1
    assert profile.static_stores == 1
    assert profile.static_atomics == 1
    assert abs(sum(profile.mix.values()) - 1.0) < 1e-9


def test_private_lines_not_shared():
    space = AddressSpace()
    a = space.new_var("a")
    b = space.new_var("b")
    t0 = TraceBuilder()
    t0.load(t0.reg(), a)
    t1 = TraceBuilder()
    t1.load(t1.reg(), b)
    profile = characterize(make_workload([t0.build(), t1.build()]))
    assert profile.shared_line_fraction == 0.0
    assert profile.rw_shared_lines == 0
    assert profile.distinct_lines == 2


def test_reader_writer_sharing_detected():
    space = AddressSpace()
    x = space.new_var("x")
    t0 = TraceBuilder()
    t0.load(t0.reg(), x)
    t1 = TraceBuilder()
    t1.store(x, 1)
    profile = characterize(make_workload([t0.build(), t1.build()]))
    assert profile.shared_line_fraction == 1.0
    assert profile.rw_shared_lines == 1


def test_read_only_sharing_is_not_rw():
    space = AddressSpace()
    x = space.new_var("x")
    traces = []
    for __ in range(2):
        t = TraceBuilder()
        t.load(t.reg(), x)
        traces.append(t.build())
    profile = characterize(make_workload(traces))
    assert profile.shared_line_fraction == 1.0
    assert profile.rw_shared_lines == 0


def test_benchmark_suite_profiles_sensible():
    for name in ("streamcluster", "swaptions", "fft"):
        workload = ALL_WORKLOADS[name](num_threads=4, scale=0.3)
        profile = characterize(workload)
        assert profile.total_instructions > 0
        assert 0.0 <= profile.shared_line_fraction <= 1.0
        assert name in profile.summary()
    # swaptions is (nearly) share-free; streamcluster is write-shared.
    swap = characterize(ALL_WORKLOADS["swaptions"](num_threads=4, scale=0.3))
    sc = characterize(ALL_WORKLOADS["streamcluster"](num_threads=4, scale=0.3))
    assert sc.rw_shared_lines > swap.rw_shared_lines
