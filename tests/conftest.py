"""Suite-wide pytest options.

``--slow`` widens the randomized batteries (differential fuzz, liveness
pressure sweeps) beyond their tier-1 budgets; ``REPRO_FUZZ_COUNT``
overrides the differential-fuzz program count directly (CI uses a
reduced battery).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--slow", action="store_true", default=False,
        help="run the extended randomized batteries (many more seeds)")


@pytest.fixture
def slow(request):
    return request.config.getoption("--slow")
