"""Suite-wide pytest options.

``--slow`` widens the randomized batteries (differential fuzz, liveness
pressure sweeps) beyond their tier-1 budgets; ``REPRO_FUZZ_COUNT``
overrides the differential-fuzz program count directly (CI uses a
reduced battery).  ``--update-goldens`` regenerates the determinism
digests in ``tests/goldens/`` instead of asserting against them — use
it only after a deliberate behavior change, and review the diff.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--slow", action="store_true", default=False,
        help="run the extended randomized batteries (many more seeds)")
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/ digests from current behavior")


@pytest.fixture
def slow(request):
    return request.config.getoption("--slow")


@pytest.fixture
def update_goldens(request):
    return request.config.getoption("--update-goldens")
