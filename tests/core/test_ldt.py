"""Lockdown Table (paper §4.2, Figure 7)."""

import pytest

from repro.common.errors import SimulationError
from repro.common.types import LineAddr
from repro.core.ldt import LockdownTable


def test_allocate_release_roundtrip():
    ldt = LockdownTable(4)
    entry = ldt.allocate(LineAddr(7))
    assert len(ldt) == 1
    assert ldt.get(entry.index) is entry
    released = ldt.release(entry.index)
    assert released is entry
    assert len(ldt) == 0


def test_capacity_enforced():
    ldt = LockdownTable(2)
    ldt.allocate(LineAddr(0))
    ldt.allocate(LineAddr(1))
    assert ldt.full
    with pytest.raises(SimulationError):
        ldt.allocate(LineAddr(2))


def test_multiple_lockdowns_same_line_allowed():
    # Paper §4.2: "the LDT allows multiple lockdowns for the same cache
    # line address (one per load)."
    ldt = LockdownTable(4)
    a = ldt.allocate(LineAddr(5))
    b = ldt.allocate(LineAddr(5))
    assert a.index != b.index
    assert len(ldt.entries_on_line(LineAddr(5))) == 2
    assert ldt.has_line(LineAddr(5))
    ldt.release(a.index)
    assert ldt.has_line(LineAddr(5))
    ldt.release(b.index)
    assert not ldt.has_line(LineAddr(5))


def test_seen_bit_carried():
    ldt = LockdownTable(2)
    entry = ldt.allocate(LineAddr(3), seen=True)
    assert entry.seen


def test_release_unknown_index_rejected():
    ldt = LockdownTable(2)
    with pytest.raises(SimulationError):
        ldt.release(99)


def test_indices_not_reused_within_session():
    ldt = LockdownTable(2)
    a = ldt.allocate(LineAddr(0))
    ldt.release(a.index)
    b = ldt.allocate(LineAddr(0))
    assert b.index != a.index
