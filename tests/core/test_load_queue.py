"""Load queue: SoS, ordered, M-speculative classification (Tables 4/5)."""

import pytest

from repro.common.errors import SimulationError
from repro.common.types import InstrType, LineAddr
from repro.core.instruction import DynInstr, Instruction
from repro.core.load_queue import LoadQueue


def load_dyn(seq):
    return DynInstr(instr=Instruction(InstrType.LOAD, dst=1, addr=0),
                    trace_idx=seq, seq=seq)


def make_lq(n=4, lines=()):
    lq = LoadQueue(8)
    entries = []
    for i in range(n):
        entry = lq.allocate(load_dyn(i))
        entry.line = LineAddr(lines[i] if i < len(lines) else i)
        entries.append(entry)
    return lq, entries


def test_sos_is_oldest_nonperformed():
    lq, entries = make_lq()
    assert lq.first_nonperformed() is entries[0]
    entries[0].performed = True
    assert lq.first_nonperformed() is entries[1]
    assert lq.is_sos(entries[1])
    assert not lq.is_sos(entries[2])


def test_all_performed_has_no_sos():
    lq, entries = make_lq(2)
    for e in entries:
        e.performed = True
    assert lq.first_nonperformed() is None


def test_ordered_means_all_older_performed():
    lq, entries = make_lq(3)
    entries[0].performed = True
    # entry1 (unperformed) is ordered: everything older is performed.
    assert lq.is_ordered(entries[1])
    assert not lq.is_ordered(entries[2])


def test_mspeculative_is_performed_but_unordered():
    # Paper Table 4: performed + unordered = M-speculative (lockdown).
    lq, entries = make_lq(3)
    entries[2].performed = True  # younger load performed under older miss
    assert lq.is_mspeculative(entries[2])
    assert not lq.is_mspeculative(entries[0])  # not performed
    entries[0].performed = True
    entries[1].performed = True
    assert not lq.is_mspeculative(entries[2])  # now ordered


def test_forwarded_loads_are_mspeculative_too():
    """A forwarded value can go stale once the forwarding store drains
    (fuzzer-found); forwarded loads need lockdown protection as well."""
    lq, entries = make_lq(2)
    entries[1].performed = True
    entries[1].forwarded = True
    assert lq.is_mspeculative(entries[1])
    assert lq.mspeculative_on_line(entries[1].line) == [entries[1]]


def test_mspeculative_on_line_filters_by_line():
    lq, entries = make_lq(4, lines=(0, 7, 7, 7))
    entries[1].performed = True
    entries[2].performed = True
    hits = lq.mspeculative_on_line(LineAddr(7))
    assert hits == [entries[1], entries[2]]
    assert lq.mspeculative_on_line(LineAddr(9)) == []
    assert lq.has_lockdown_on(LineAddr(7))
    assert not lq.has_lockdown_on(LineAddr(0))


def test_nearest_older_nonperformed():
    lq, entries = make_lq(4)
    entries[1].performed = True
    assert lq.nearest_older_nonperformed(entries[3]) is entries[2]
    assert lq.nearest_older_nonperformed(entries[1]) is entries[0]
    assert lq.nearest_older_nonperformed(entries[0]) is None


def test_remove_and_capacity():
    lq = LoadQueue(2)
    e0 = lq.allocate(load_dyn(0))
    lq.allocate(load_dyn(1))
    assert lq.full
    with pytest.raises(SimulationError):
        lq.allocate(load_dyn(2))
    lq.remove(e0)
    assert not lq.full


def test_entry_for():
    lq = LoadQueue(2)
    d = load_dyn(0)
    entry = lq.allocate(d)
    assert lq.entry_for(d) is entry
    assert lq.entry_for(load_dyn(1)) is None
