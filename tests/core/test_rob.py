"""Collapsible reorder buffer."""

import pytest

from repro.common.errors import SimulationError
from repro.common.types import InstrType
from repro.core.instruction import DynInstr, Instruction


def dyn(seq):
    return DynInstr(instr=Instruction(InstrType.NOP), trace_idx=seq, seq=seq)


def make_rob(capacity=4):
    from repro.core.rob import ReorderBuffer
    return ReorderBuffer(capacity)


def test_push_and_head():
    rob = make_rob()
    a, b = dyn(0), dyn(1)
    rob.push(a)
    rob.push(b)
    assert rob.head() is a
    assert len(rob) == 2


def test_overflow_rejected():
    rob = make_rob(capacity=1)
    rob.push(dyn(0))
    assert rob.full
    with pytest.raises(SimulationError):
        rob.push(dyn(1))


def test_commit_from_middle_collapses():
    rob = make_rob()
    a, b, c = dyn(0), dyn(1), dyn(2)
    for d in (a, b, c):
        rob.push(d)
    rob.commit(b)
    assert list(rob) == [a, c]
    assert rob[1] is c  # gap closed; program order by position


def test_squash_younger_than():
    rob = make_rob()
    items = [dyn(i) for i in range(4)]
    for d in items:
        rob.push(d)
    squashed = rob.squash_younger_than(items[1])
    assert squashed == items[2:]
    assert list(rob) == items[:2]


def test_squash_younger_than_none_flushes_all():
    rob = make_rob()
    items = [dyn(i) for i in range(3)]
    for d in items:
        rob.push(d)
    assert rob.squash_younger_than(None) == items
    assert rob.empty


def test_squash_from_includes_target():
    rob = make_rob()
    items = [dyn(i) for i in range(3)]
    for d in items:
        rob.push(d)
    squashed = rob.squash_from(items[1])
    assert squashed == items[1:]
    assert list(rob) == items[:1]


def test_squash_unknown_entry_rejected():
    rob = make_rob()
    rob.push(dyn(0))
    with pytest.raises(SimulationError):
        rob.squash_younger_than(dyn(9))
