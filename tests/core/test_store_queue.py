"""Store queue: resolution tracking and forwarding search."""

import pytest

from repro.common.errors import SimulationError
from repro.common.types import InstrType
from repro.core.instruction import DynInstr, Instruction
from repro.core.store_queue import StoreQueue


def store_dyn(seq):
    return DynInstr(instr=Instruction(InstrType.STORE, addr=0),
                    trace_idx=seq, seq=seq)


def test_allocate_and_resolve():
    sq = StoreQueue(4)
    entry = sq.allocate(store_dyn(0))
    assert not entry.resolved
    assert not entry.value_ready
    entry.addr = 64
    entry.value = 5
    entry.version = 1
    assert entry.resolved and entry.value_ready


def test_unresolved_older_than():
    sq = StoreQueue(4)
    e0 = sq.allocate(store_dyn(0))
    e2 = sq.allocate(store_dyn(2))
    assert sq.unresolved_older_than(5)
    e0.addr = 8
    assert sq.unresolved_older_than(5)  # e2 still unresolved
    e2.addr = 16
    assert not sq.unresolved_older_than(5)
    assert not sq.unresolved_older_than(1)  # e2 is younger than seq 1


def test_forward_for_youngest_older_match():
    sq = StoreQueue(4)
    e0 = sq.allocate(store_dyn(0))
    e1 = sq.allocate(store_dyn(1))
    e2 = sq.allocate(store_dyn(5))
    e0.addr = 8
    e1.addr = 8
    e2.addr = 8
    # Load at seq 3: candidates are seq 0 and 1; youngest is 1.
    assert sq.forward_for(8, load_seq=3) is e1
    assert sq.forward_for(16, load_seq=3) is None
    # Load at seq 0: no older stores at all.
    assert sq.forward_for(8, load_seq=0) is None


def test_forward_returns_entry_even_without_value():
    sq = StoreQueue(2)
    entry = sq.allocate(store_dyn(0))
    entry.addr = 8
    found = sq.forward_for(8, load_seq=1)
    assert found is entry
    assert not found.value_ready  # the load must wait for the value


def test_capacity():
    sq = StoreQueue(1)
    sq.allocate(store_dyn(0))
    assert sq.full
    with pytest.raises(SimulationError):
        sq.allocate(store_dyn(1))


def test_remove_and_oldest():
    sq = StoreQueue(4)
    e0 = sq.allocate(store_dyn(0))
    e1 = sq.allocate(store_dyn(1))
    assert sq.oldest() is e0
    sq.remove(e0)
    assert sq.oldest() is e1
    assert sq.entry_for(e0.dyn) is None
    assert sq.entry_for(e1.dyn) is e1
