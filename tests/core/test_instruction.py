"""Instruction validation and dynamic-instance dataflow."""

import pytest

from repro.common.errors import ConfigError
from repro.common.types import InstrType
from repro.core.instruction import DynInstr, Instruction


def test_alu_requires_known_op():
    with pytest.raises(ConfigError):
        Instruction(InstrType.ALU, op="frobnicate")
    Instruction(InstrType.ALU, op="mov")  # ok


def test_branch_requires_target_and_op():
    with pytest.raises(ConfigError):
        Instruction(InstrType.BRANCH, op="beqz")
    with pytest.raises(ConfigError):
        Instruction(InstrType.BRANCH, op="jlt", target=0)
    Instruction(InstrType.BRANCH, op="bnez", srcs=(1,), target=0)


def test_memory_ops_require_an_address():
    with pytest.raises(ConfigError):
        Instruction(InstrType.LOAD, dst=1)
    Instruction(InstrType.LOAD, dst=1, addr=64)
    Instruction(InstrType.LOAD, dst=1, addr_reg=2)  # dynamic address


def test_atomic_ops():
    with pytest.raises(ConfigError):
        Instruction(InstrType.ATOMIC, op="swap", addr=0)
    Instruction(InstrType.ATOMIC, op="tas", addr=0)
    Instruction(InstrType.ATOMIC, op="faa", addr=0, imm=2)


def test_is_mem():
    assert Instruction(InstrType.LOAD, addr=0).is_mem
    assert Instruction(InstrType.STORE, addr=0).is_mem
    assert Instruction(InstrType.ATOMIC, op="tas", addr=0).is_mem
    assert not Instruction(InstrType.ALU, op="mov").is_mem


def make_dyn(instr, seq=0):
    return DynInstr(instr=instr, trace_idx=seq, seq=seq)


def test_sources_ready_tracks_producers():
    producer = make_dyn(Instruction(InstrType.ALU, dst=1, op="mov", imm=7))
    consumer = make_dyn(Instruction(InstrType.ALU, dst=2, srcs=(1,),
                                    op="addi", imm=1), seq=1)
    consumer.producers = (producer,)
    consumer.src_values = (None,)
    assert not consumer.sources_ready()
    producer.value = 7
    producer.executed = True
    assert consumer.sources_ready()
    assert consumer.source_value(0) == 7


def test_source_value_from_capture():
    consumer = make_dyn(Instruction(InstrType.ALU, dst=2, srcs=(1,),
                                    op="addi", imm=1))
    consumer.producers = (None,)
    consumer.src_values = (42,)
    assert consumer.sources_ready()
    assert consumer.source_value(0) == 42


def test_uids_unique():
    a = make_dyn(Instruction(InstrType.NOP))
    b = make_dyn(Instruction(InstrType.NOP))
    assert a.uid != b.uid
