"""In-order stall-on-use core, with and without ECL (paper §1)."""

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.sim.system import MulticoreSystem
from repro.workloads.trace import AddressSpace, TraceBuilder


def make_params(core_type, wb=None):
    if wb is None:
        wb = core_type == "inorder-ecl"
    params = table6_system("SLM", num_cores=4)
    return dataclasses.replace(params, core_type=core_type, writers_block=wb)


def run(traces, core_type, wb=None):
    system = MulticoreSystem(make_params(core_type, wb))
    system.load_program(traces)
    return system, system.run()


def test_ecl_requires_writers_block():
    with pytest.raises(ConfigError):
        make_params("inorder-ecl", wb=False).validate()


def test_unknown_core_type_rejected():
    with pytest.raises(ConfigError):
        make_params("vliw").validate()


def test_alu_program_executes_in_order():
    t = TraceBuilder()
    a, b = t.reg(), t.reg()
    t.mov(a, 4)
    t.addi(b, a, 3)
    t.xori(b, b, 1)
    system, result = run([t.build()], "inorder")
    assert system.cores[0].reg_values[b] == 7 ^ 1
    assert result.committed == 3


def test_branch_loop_runs_dynamically():
    t = TraceBuilder()
    counter, done = t.reg(), t.reg()
    t.mov(counter, 0)
    top = t.here
    t.addi(counter, counter, 1)
    t.xori(done, counter, 4)
    t.bnez(done, top)
    system, __ = run([t.build()], "inorder")
    assert system.cores[0].reg_values[counter] == 4


@pytest.mark.parametrize("core_type", ["inorder", "inorder-ecl"])
def test_store_load_forwarding(core_type):
    space = AddressSpace()
    x = space.new_var("x")
    t = TraceBuilder()
    r = t.reg()
    t.store(x, 9)
    t.load(r, x)
    system, __ = run([t.build()], core_type)
    assert system.cores[0].reg_values[r] == 9


def test_baseline_serializes_loads_ecl_overlaps_them():
    """The defining difference: with independent misses, the blocking
    baseline pays them serially; ECL overlaps them (MLP)."""
    space = AddressSpace()
    addrs = space.new_array("a", 8)
    t = TraceBuilder()
    for addr in addrs:
        t.load(t.reg(), addr)  # 8 independent cold misses
    traces = [t.build()]
    __, baseline = run(traces, "inorder")
    __, ecl = run(traces, "inorder-ecl")
    assert baseline.committed == ecl.committed == 8
    # Serial (~8 x miss) vs overlapped (~1 x miss + deltas).
    assert ecl.cycles * 3 < baseline.cycles
    assert baseline.counter("core.inorder_order_stalls") > 0


def test_stall_on_use_not_on_miss():
    """The core keeps issuing past a miss until the value is used."""
    space = AddressSpace()
    x = space.new_var("x")
    t = TraceBuilder()
    r = t.reg()
    t.load(r, x)  # cold miss
    for __ in range(5):
        t.compute(latency=1)  # independent: must not stall
    user = t.reg()
    t.addi(user, r, 1)  # the use: stalls here
    system, result = run([t.build()], "inorder-ecl")
    assert result.counter("core.inorder_use_stalls") > 0
    assert system.cores[0].reg_values[user] == 1


def test_ecl_reordering_is_hidden_by_writersblock():
    """The Table 1 race on ECL cores: no squash machinery exists, yet
    TSO holds (the run_* helper checks the log via run())."""
    space = AddressSpace()
    x = space.new_var("x")
    y = space.new_var("y")
    t0 = TraceBuilder()
    warm = t0.reg()
    t0.load(warm, x)
    gate = t0.reg()
    t0.gate(gate, srcs=(warm,), latency=300)
    ra = t0.reg()
    t0.load(ra, y, addr_reg=gate)
    rb = t0.reg()
    t0.load(rb, x)
    t1 = TraceBuilder()
    t1.compute(latency=60)
    t1.store(x, 1)
    t1.store(y, 1)
    from repro.consistency.tso_checker import check_tso
    system, result = run([t0.build(), t1.build()], "inorder-ecl")
    check_tso(result.log)
    regs = system.cores[0].reg_values
    assert not (regs[ra] == 1 and regs[rb] == 0)


def test_atomics_work_on_inorder_cores():
    space = AddressSpace()
    c = space.new_var("c")
    traces = []
    for __ in range(4):
        t = TraceBuilder()
        t.faa(t.reg(), c, 1)
        traces.append(t.build())
    system, result = run(traces, "inorder-ecl")
    atomics = [e for e in result.log.events if e.kind == "at"]
    assert sorted(result.log.value_of(e.version_read) for e in atomics) \
        == [0, 1, 2, 3]


def test_ecl_load_retires_before_performing():
    """The EV5 signature: the window drains past an outstanding miss."""
    space = AddressSpace()
    x = space.new_var("x")
    t = TraceBuilder()
    t.load(t.reg(), x)  # miss
    for __ in range(3):
        t.compute(latency=1)
    system, result = run([t.build()], "inorder-ecl")
    # All 4 instructions committed; the load's perform happened late but
    # nothing waited for it.
    assert result.committed == 4
