"""Lockdown lifecycle: Nacks, deferred acks, LDT export (paper §3.2, §4.2)."""

import pytest

from repro.common.errors import SimulationError
from repro.common.stats import StatsRegistry
from repro.common.types import InstrType, LineAddr
from repro.core.instruction import DynInstr, Instruction
from repro.core.ldt import LockdownTable
from repro.core.load_queue import LoadQueue
from repro.core.lockdowns import LockdownUnit


class Harness:
    def __init__(self, n_loads=4, lines=(0, 1, 1, 1), ldt_size=8):
        self.acks = []
        self.stats = StatsRegistry()
        self.lq = LoadQueue(8)
        self.ldt = LockdownTable(ldt_size)
        self.unit = LockdownUnit(self.lq, self.ldt, self.acks.append,
                                 self.stats)
        self.entries = []
        for i in range(n_loads):
            dyn = DynInstr(instr=Instruction(InstrType.LOAD, dst=1, addr=0),
                           trace_idx=i, seq=i)
            entry = self.lq.allocate(dyn)
            entry.line = LineAddr(lines[i])
            dyn.lq_entry = entry
            self.entries.append(entry)

    def perform(self, idx):
        self.entries[idx].performed = True
        self.unit.sweep_ordered()


def test_no_lockdown_means_plain_ack():
    h = Harness()
    assert h.unit.on_invalidation(LineAddr(1)) is False
    assert not h.unit.line_pending_inv(LineAddr(1))


def test_mspec_load_nacks_and_defers_ack_until_ordered():
    h = Harness()
    h.perform(1)  # load 1 performed under load 0's miss: M-speculative
    assert h.unit.on_invalidation(LineAddr(1)) is True
    assert h.entries[1].seen
    assert h.unit.line_pending_inv(LineAddr(1))
    assert h.acks == []
    h.perform(0)  # load 1 becomes ordered -> lockdown lifts -> ack
    assert h.acks == [LineAddr(1)]
    assert not h.unit.line_pending_inv(LineAddr(1))


def test_ack_waits_for_last_lockdown_on_line():
    # Two M-speculative loads on the same line: ack only when the
    # youngest (i.e. all of them) becomes ordered.
    h = Harness()
    h.perform(1)
    h.perform(2)
    assert h.unit.on_invalidation(LineAddr(1)) is True
    assert h.entries[1].seen and h.entries[2].seen
    h.perform(3)  # new perform after the inv: no new lockdown for it
    assert h.acks == []
    h.perform(0)  # everyone ordered now
    assert h.acks == [LineAddr(1)]


def test_squash_ends_lockdown_and_releases_ack():
    h = Harness()
    h.perform(1)
    assert h.unit.on_invalidation(LineAddr(1))
    h.unit.on_squash(h.entries[1])
    h.lq.remove(h.entries[1])
    assert h.acks == [LineAddr(1)]


def test_squash_of_one_holder_keeps_waiting_for_others():
    h = Harness()
    h.perform(1)
    h.perform(2)
    assert h.unit.on_invalidation(LineAddr(1))
    h.unit.on_squash(h.entries[2])
    h.lq.remove(h.entries[2])
    assert h.acks == []  # entry 1 still holds the lockdown
    h.perform(0)
    assert h.acks == [LineAddr(1)]


def test_export_to_ldt_transfers_seen_and_guards():
    h = Harness()
    h.perform(1)
    assert h.unit.on_invalidation(LineAddr(1))
    assert h.unit.export_on_commit(h.entries[1])
    h.lq.remove(h.entries[1])
    assert len(h.ldt) == 1
    assert h.ldt.entries()[0].seen
    # Guard responsibility went to the nearest older non-performed load.
    assert h.entries[0].guards == {h.ldt.entries()[0].index}
    assert h.acks == []
    h.perform(0)  # guard performs & ordered: releases the LDT lockdown
    assert h.acks == [LineAddr(1)]
    assert len(h.ldt) == 0


def test_export_fails_when_ldt_full():
    h = Harness(ldt_size=0)
    h.perform(1)
    assert h.unit.export_on_commit(h.entries[1]) is False


def test_export_of_ordered_load_rejected():
    h = Harness()
    h.perform(0)
    h.perform(1)  # ordered now
    with pytest.raises(SimulationError):
        h.unit.export_on_commit(h.entries[1])


def test_guard_chain_passes_to_next_older_nonperformed():
    # Figure 7's chain: committed loads pile their LDT indices on the
    # first older non-performed load; when it commits too, the set moves.
    h = Harness(lines=(0, 1, 2, 3))
    h.perform(2)
    h.perform(3)
    assert h.unit.export_on_commit(h.entries[3])
    h.lq.remove(h.entries[3])
    assert h.entries[1].guards  # guard = load 1 (oldest non-performed < 3)
    h.perform(1)
    # Load 1 performed but NOT ordered (load 0 missing): guards stay.
    assert h.entries[1].guards
    assert h.unit.export_on_commit(h.entries[1])  # load 1 commits M-spec
    h.lq.remove(h.entries[1])
    # Its own lockdown plus the inherited ones moved to load 0.
    assert len(h.entries[0].guards) == 2
    h.perform(0)
    assert len(h.ldt) == 0


def test_invalidation_hits_ldt_entries():
    h = Harness()
    h.perform(1)
    assert h.unit.export_on_commit(h.entries[1])
    h.lq.remove(h.entries[1])
    assert h.unit.on_invalidation(LineAddr(1)) is True  # lockdown in LDT
    assert h.acks == []
    h.perform(0)
    assert h.acks == [LineAddr(1)]


def test_double_invalidation_same_line_rejected():
    h = Harness()
    h.perform(1)
    h.unit.on_invalidation(LineAddr(1))
    with pytest.raises(SimulationError):
        h.unit.on_invalidation(LineAddr(1))


def test_has_lockdown_queries_both_structures():
    h = Harness()
    assert not h.unit.has_lockdown(LineAddr(1))
    h.perform(1)
    assert h.unit.has_lockdown(LineAddr(1))
    h.unit.export_on_commit(h.entries[1])
    h.lq.remove(h.entries[1])
    assert h.unit.has_lockdown(LineAddr(1))  # now via the LDT
