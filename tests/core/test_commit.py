"""Commit policies: Bell-Lipasti conditions and the WB relaxation.

These tests drive the real core inside a 4-core system but with
hand-written traces so each condition is exercised in isolation.
"""

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.sim.system import MulticoreSystem
from repro.workloads.trace import AddressSpace, TraceBuilder


def run_system(traces, mode, *, num_cores=4, max_cycles=0):
    params = table6_system("SLM", num_cores=num_cores, commit_mode=mode)
    system = MulticoreSystem(params)
    system.load_program(traces)
    result = system.run()
    return system, result


def slow_miss_then_alus(n_alus=12):
    """Core 0: one cold-miss load, then independent ALU work."""
    space = AddressSpace()
    x = space.new_var("x")
    t = TraceBuilder()
    t.load(t.reg(), x)  # cold miss: ~200 cycles
    for __ in range(n_alus):
        t.compute(latency=1)
    return [t.build()]


def first_commit_cycles(system):
    """Helper: per-core count of committed instructions."""
    return [system.stats.counter(f"core{i}.committed").value
            for i in range(len(system.cores))]


def test_in_order_commits_everything_exactly_once():
    system, result = run_system(slow_miss_then_alus(), CommitMode.IN_ORDER)
    assert result.counter("core0.committed") == 13


def test_all_modes_commit_same_instruction_count():
    # Re-execution bugs show up as inflated commit counts.
    counts = {}
    for mode in (CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB):
        __, result = run_system(slow_miss_then_alus(), mode)
        counts[mode] = result.counter("core0.committed")
    assert len(set(counts.values())) == 1, counts


def test_ooo_cannot_commit_past_unperformed_load():
    """Squash-based OoO: ALUs younger than the SoS load wait (they could
    be re-executed by a consistency squash)."""
    space = AddressSpace()
    x = space.new_var("x")
    t = TraceBuilder()
    t.load(t.reg(), x)  # long miss at head
    t.compute(latency=1)
    system, __ = run_system([t.build()], CommitMode.OOO)
    # Sanity via cycle counts: the ALU could only commit after the load
    # performed, so total runtime tracks the miss latency in both modes.
    in_sys, __ = run_system([t.build()], CommitMode.IN_ORDER)
    assert abs(system.cores[0].done_cycle - in_sys.cores[0].done_cycle) <= 2


def test_wb_commits_independent_work_past_sos_load():
    """OOO_WB retires completed ALUs behind the miss; the ROB never
    backs up, so a *long* ALU tail finishes sooner than in-order."""
    traces = slow_miss_then_alus(n_alus=200)
    __, in_order = run_system(traces, CommitMode.IN_ORDER)
    __, wb = run_system(traces, CommitMode.OOO_WB)
    assert wb.counter("core0.committed") == in_order.counter("core0.committed")
    assert wb.cycles < in_order.cycles


def test_wb_mspec_load_exports_to_ldt_and_commits():
    space = AddressSpace()
    x = space.new_var("x")
    y = space.new_var("y")
    t = TraceBuilder()
    t.load(t.reg(), y)  # miss: SoS
    t.load(t.reg(), x)  # miss then... also miss; make x a hit instead:
    trace = t.build()
    # Warm x first so the younger load hits and becomes M-speculative.
    t2 = TraceBuilder()
    r = t2.reg()
    t2.load(r, x)
    t2.compute(latency=40)
    t2.load(t2.reg(), y)  # SoS: long miss
    t2.load(t2.reg(), x)  # hit: M-speculative, commits via LDT
    system, result = run_system([t2.build()], CommitMode.OOO_WB)
    assert result.counter("core.ldt_exports") >= 1


def test_store_commit_waits_for_older_loads():
    """TSO load->store commit order (paper §3.1.2): the store cannot
    enter the SB while the older load is unperformed."""
    space = AddressSpace()
    x = space.new_var("x")
    z = space.new_var("z")
    t = TraceBuilder()
    t.load(t.reg(), x)  # miss
    t.store(z, 1)
    for mode in (CommitMode.OOO, CommitMode.OOO_WB):
        system, result = run_system([t.build()], mode)
        # The store performed strictly after the load performed.
        log = result.log
        load_cycle = next(e.cycle for e in log.events if e.kind == "ld")
        store_cycle = next(e.cycle for e in log.events if e.kind == "st")
        assert store_cycle > load_cycle


def test_unsafe_mode_commits_mspec_loads_without_ldt():
    space = AddressSpace()
    x = space.new_var("x")
    y = space.new_var("y")
    t = TraceBuilder()
    r = t.reg()
    t.load(r, x)
    t.compute(latency=40)
    t.load(t.reg(), y)
    t.load(t.reg(), x)
    system, result = run_system([t.build()], CommitMode.OOO_UNSAFE)
    assert result.counter("core.ldt_exports") == 0
    assert result.counter("core0.committed") == 4
