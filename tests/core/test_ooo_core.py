"""Core pipeline behaviours on small directed programs."""

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.sim.system import MulticoreSystem
from repro.workloads.trace import AddressSpace, TraceBuilder


def run_one(trace, mode=CommitMode.IN_ORDER, num_cores=4, core_params=None):
    params = table6_system("SLM", num_cores=num_cores, commit_mode=mode)
    system = MulticoreSystem(params)
    system.load_program([trace])
    result = system.run()
    return system, result


def test_alu_dataflow_computes_values():
    t = TraceBuilder()
    a, b, c = t.reg(), t.reg(), t.reg()
    t.mov(a, 5)
    t.addi(b, a, 3)
    t.xori(c, b, 0xF)
    system, __ = run_one(t.build())
    assert system.cores[0].reg_values[a] == 5
    assert system.cores[0].reg_values[b] == 8
    assert system.cores[0].reg_values[c] == 8 ^ 0xF


def test_branch_taken_skips_instructions():
    t = TraceBuilder()
    r, out = t.reg(), t.reg()
    t.mov(out, 1)
    t.mov(r, 0)
    branch = t.beqz(r, 0, predict_taken=False)  # taken: r == 0
    t.mov(out, 99)  # must be skipped
    t.fix_target(branch, t.here)
    t.addi(out, out, 10)
    system, result = run_one(t.build())
    assert system.cores[0].reg_values[out] == 11
    # Mispredicted (predicted not-taken, actually taken): one squash.
    assert result.counter("core.branch_mispredicts") == 1


def test_correctly_predicted_branch_costs_no_squash():
    t = TraceBuilder()
    r, out = t.reg(), t.reg()
    t.mov(out, 1)
    t.mov(r, 0)
    branch = t.beqz(r, 0, predict_taken=True)
    t.mov(out, 99)
    t.fix_target(branch, t.here)
    system, result = run_one(t.build())
    assert system.cores[0].reg_values[out] == 1
    assert result.counter("core.branch_mispredicts") == 0


def test_loop_executes_dynamic_iterations():
    t = TraceBuilder()
    counter, done = t.reg(), t.reg()
    t.mov(counter, 0)
    top = t.here
    t.addi(counter, counter, 1)
    t.xori(done, counter, 5)  # zero when counter == 5
    t.bnez(done, top, predict_taken=True)
    system, result = run_one(t.build())
    assert system.cores[0].reg_values[counter] == 5


def test_store_to_load_forwarding_same_address():
    space = AddressSpace()
    x = space.new_var("x")
    t = TraceBuilder()
    r = t.reg()
    t.store(x, 42)
    t.load(r, x)  # must forward from the SQ/SB, not miss to memory
    system, result = run_one(t.build())
    assert system.cores[0].reg_values[r] == 42
    load_event = next(e for e in result.log.events if e.kind == "ld")
    assert load_event.forwarded


def test_no_forwarding_across_different_bytes():
    space = AddressSpace()
    x = space.new_var("x")
    t = TraceBuilder()
    r = t.reg()
    t.store(x, 42)
    t.load(r, x + 4)  # same line, different byte: no forwarding
    system, result = run_one(t.build())
    assert system.cores[0].reg_values[r] == 0
    load_event = next(e for e in result.log.events if e.kind == "ld")
    assert not load_event.forwarded


def test_load_waits_for_unresolved_older_store_value():
    """Exact-address match with a value not yet ready: the load waits
    and then forwards (it must not read the stale memory value)."""
    space = AddressSpace()
    x = space.new_var("x")
    t = TraceBuilder()
    slow = t.reg()
    t.gate(slow, srcs=(), latency=80, imm=7)
    t.store(x, value_reg=slow)
    r = t.reg()
    t.load(r, x)
    system, __ = run_one(t.build())
    assert system.cores[0].reg_values[r] == 7


def test_atomic_tas_and_faa_semantics():
    space = AddressSpace()
    lock = space.new_var("lock")
    count = space.new_var("count")
    t = TraceBuilder()
    r1, r2, r3 = t.reg(), t.reg(), t.reg()
    t.tas(r1, lock)  # old 0, writes 1
    t.tas(r2, lock)  # old 1
    t.faa(r3, count, 5)  # old 0, writes 5
    system, __ = run_one(t.build())
    regs = system.cores[0].reg_values
    assert (regs[r1], regs[r2], regs[r3]) == (0, 1, 0)


def test_loads_do_not_issue_past_unperformed_atomic():
    """Paper §3.7: no load younger than an uncompleted atomic may
    perform (it could otherwise become an unlockdownable M-spec load)."""
    space = AddressSpace()
    lock = space.new_var("lock")
    x = space.new_var("x")
    t = TraceBuilder()
    r_at, r_ld = t.reg(), t.reg()
    t.tas(r_at, lock)
    t.load(r_ld, x)
    system, result = run_one(t.build(), mode=CommitMode.OOO_WB)
    at_event = next(e for e in result.log.events if e.kind == "at")
    ld_event = next(e for e in result.log.events if e.kind == "ld")
    assert ld_event.cycle > at_event.cycle


def test_dispatch_stall_accounting():
    space = AddressSpace()
    x = space.new_var("x")
    t = TraceBuilder()
    t.load(t.reg(), x)  # ~200-cycle cold miss at the head
    for __ in range(60):
        t.compute(latency=1)
    system, result = run_one(t.build())
    # In-order commit: the miss blocks the head; the 32-entry ROB fills.
    assert result.counter("core0.stall_rob") > 50


def test_consistency_squash_reexecutes_load():
    """Squash-mode core: invalidation hits the M-spec load, which then
    re-executes and reads the NEW value."""
    space = AddressSpace()
    x = space.new_var("x")
    y = space.new_var("y")
    t0 = TraceBuilder()
    warm = t0.reg()
    t0.load(warm, x)
    gate = t0.reg()
    t0.gate(gate, srcs=(warm,), latency=300)
    ra = t0.reg()
    t0.load(ra, y, addr_reg=gate)
    rb = t0.reg()
    t0.load(rb, x)  # hit -> M-speculative -> squashed by the inv
    t1 = TraceBuilder()
    t1.compute(latency=60)
    t1.store(x, 1)
    t1.store(y, 1)
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO)
    system = MulticoreSystem(params)
    system.load_program([t0.build(), t1.build()])
    result = system.run()
    assert result.counter("core.consistency_squashes") >= 1
    assert system.cores[0].reg_values[rb] == 1  # re-read the new value


def test_core_snapshot_is_informative():
    t = TraceBuilder()
    t.nop()
    system, __ = run_one(t.build())
    assert "core0" in system.cores[0].snapshot()
