"""Enums, message sizing, line address mapping."""

import pytest

from repro.common.types import (
    CTRL_MSG_FLITS,
    DATA_MSG_FLITS,
    LineAddr,
    MsgType,
    flits_for,
    line_of,
)


def test_data_messages_are_five_flits():
    # Paper Table 6: data messages 5 flits, control 1 flit.
    assert DATA_MSG_FLITS == 5
    assert CTRL_MSG_FLITS == 1
    for msg_type in (MsgType.DATA, MsgType.DATA_EXCL, MsgType.DATA_UNCACHEABLE,
                     MsgType.PUTM, MsgType.NACK_DATA, MsgType.ACK_DATA,
                     MsgType.COPYBACK):
        assert flits_for(msg_type) == 5, msg_type


def test_control_messages_are_one_flit():
    for msg_type in (MsgType.GETS, MsgType.GETX, MsgType.UPGRADE, MsgType.INV,
                     MsgType.ACK, MsgType.NACK, MsgType.UNBLOCK,
                     MsgType.DEFERRED_ACK, MsgType.BLOCKED_HINT, MsgType.PERM,
                     MsgType.FWD_GETS, MsgType.FWD_GETX, MsgType.WB_ACK):
        assert flits_for(msg_type) == 1, msg_type


def test_line_of_maps_bytes_to_lines():
    assert line_of(0, 64) == LineAddr(0)
    assert line_of(63, 64) == LineAddr(0)
    assert line_of(64, 64) == LineAddr(1)
    assert line_of(0x1008, 64) == LineAddr(0x40)


def test_line_addr_hashable_and_comparable():
    assert LineAddr(5) == LineAddr(5)
    assert LineAddr(5) != LineAddr(6)
    assert len({LineAddr(5), LineAddr(5), LineAddr(6)}) == 2
    assert int(LineAddr(9)) == 9


def test_negative_line_addr_rejected():
    with pytest.raises(ValueError):
        LineAddr(-1)
