"""Configuration presets and validation (paper Table 6)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import (
    CORE_CLASSES,
    CacheParams,
    CoreParams,
    SystemParams,
    mesh_dims,
    mesh_side,
    table6_system,
)
from repro.common.types import CommitMode


def test_table6_core_classes_match_paper():
    slm = CORE_CLASSES["SLM"]
    assert (slm.iq_entries, slm.rob_entries, slm.lq_entries,
            slm.sq_entries) == (16, 32, 10, 16)
    nhm = CORE_CLASSES["NHM"]
    assert (nhm.iq_entries, nhm.rob_entries, nhm.lq_entries,
            nhm.sq_entries) == (32, 128, 48, 36)
    hsw = CORE_CLASSES["HSW"]
    assert (hsw.iq_entries, hsw.rob_entries, hsw.lq_entries,
            hsw.sq_entries) == (60, 192, 72, 42)
    for core in CORE_CLASSES.values():
        assert core.issue_width == 4
        assert core.commit_width == 4
        assert core.ldt_entries == 32


def test_table6_memory_parameters_match_paper():
    cache = CacheParams()
    assert cache.line_bytes == 64
    assert cache.l1_sets * cache.l1_ways * cache.line_bytes == 32 * 1024
    assert cache.l2_sets * cache.l2_ways * cache.line_bytes == 128 * 1024
    assert (cache.llc_sets_per_bank * cache.llc_ways * cache.line_bytes
            == 1024 * 1024)
    assert cache.l1_hit_cycles == 4
    assert cache.l2_hit_cycles == 12
    assert cache.llc_hit_cycles == 35
    assert cache.memory_cycles == 160


def test_default_system_is_16_core_mesh():
    params = table6_system("SLM")
    assert params.num_cores == 16
    assert params.network.switch_cycles == 6
    params.validate()


def test_unknown_core_class_rejected():
    with pytest.raises(ConfigError):
        table6_system("XEON")


def test_rectangular_core_count_accepted():
    params = table6_system("SLM")
    SystemParams(num_cores=8, core=params.core).validate()
    assert mesh_dims(8) == (4, 2)
    assert mesh_dims(16) == (4, 4)


def test_prime_core_count_rejected():
    params = table6_system("SLM")
    with pytest.raises(ConfigError):
        SystemParams(num_cores=7, core=params.core).validate()


def test_ooo_wb_commit_requires_writers_block():
    with pytest.raises(ConfigError):
        SystemParams(num_cores=4, commit_mode=CommitMode.OOO_WB,
                     writers_block=False).validate()


def test_with_commit_enables_writers_block_for_wb_mode():
    params = table6_system("SLM", num_cores=4)
    wb = params.with_commit(CommitMode.OOO_WB)
    assert wb.writers_block
    assert wb.commit_mode is CommitMode.OOO_WB
    ooo = params.with_commit(CommitMode.OOO)
    assert not ooo.writers_block


def test_table6_system_ooo_wb_shortcut():
    params = table6_system("NHM", commit_mode=CommitMode.OOO_WB)
    assert params.writers_block
    params.validate()


def test_core_params_validation():
    with pytest.raises(ConfigError):
        CoreParams(lq_entries=64, rob_entries=32).validate()
    with pytest.raises(ConfigError):
        CoreParams(issue_width=0).validate()


def test_cache_params_validation():
    with pytest.raises(ConfigError):
        CacheParams(line_bytes=48).validate()
    with pytest.raises(ConfigError):
        CacheParams(mshr_entries=2, mshr_reserved_for_sos=2).validate()


def test_mesh_side():
    assert mesh_side(16) == 4
    assert mesh_side(4) == 2
    assert mesh_side(1) == 1
