"""Counters, histograms, and the registry."""

from repro.common.stats import Counter, Histogram, StatsRegistry


def test_counter_accumulates():
    c = Counter("x")
    c.add()
    c.add(5)
    assert c.value == 6


def test_histogram_stats():
    h = Histogram("lat")
    h.record(4)
    h.record(4)
    h.record(10)
    assert h.total == 3
    assert h.max == 10
    assert abs(h.mean - 6.0) < 1e-9


def test_empty_histogram():
    h = Histogram("e")
    assert h.total == 0
    assert h.mean == 0.0
    assert h.max == 0


def test_registry_deduplicates_by_name():
    reg = StatsRegistry()
    a = reg.counter("net.msgs")
    b = reg.counter("net.msgs")
    assert a is b
    a.add(3)
    assert reg.value("net.msgs") == 3
    assert reg.value("missing") == 0
    assert reg.value("missing", default=7) == 7


def test_registry_as_dict_sorted():
    reg = StatsRegistry()
    reg.counter("b").add(2)
    reg.counter("a").add(1)
    assert list(reg.as_dict()) == ["a", "b"]
    assert reg.as_dict() == {"a": 1, "b": 2}


def test_histogram_registry():
    reg = StatsRegistry()
    h = reg.histogram("lat")
    assert reg.histogram("lat") is h
