"""Counters, histograms, and the registry."""

from repro.common.stats import Counter, Histogram, StatsRegistry


def test_counter_accumulates():
    c = Counter("x")
    c.add()
    c.add(5)
    assert c.value == 6


def test_histogram_stats():
    h = Histogram("lat")
    h.record(4)
    h.record(4)
    h.record(10)
    assert h.total == 3
    assert h.max == 10
    assert abs(h.mean - 6.0) < 1e-9


def test_empty_histogram():
    h = Histogram("e")
    assert h.total == 0
    assert h.mean == 0.0
    # None, not 0: an untouched histogram must not masquerade as one
    # that recorded a real zero sample.
    assert h.max is None
    assert h.min is None
    assert h.percentile(50) == 0


def test_empty_histogram_omitted_from_summaries():
    reg = StatsRegistry()
    reg.histogram("touched").record(5)
    reg.histogram("untouched")
    summaries = reg.histogram_summaries()
    assert "touched" in summaries
    assert "untouched" not in summaries


def test_histogram_min():
    h = Histogram("lat")
    h.record(7)
    h.record(3)
    assert h.min == 3


def test_percentile_nearest_rank():
    h = Histogram("lat")
    for value in range(1, 101):  # 1..100, one each
        h.record(value)
    assert h.percentile(0) == 1
    assert h.percentile(50) == 50
    assert h.percentile(99) == 99
    assert h.percentile(100) == 100


def test_percentile_weighted_buckets():
    h = Histogram("lat")
    h.record(10, count=98)
    h.record(1000, count=2)
    assert h.percentile(50) == 10
    assert h.percentile(98) == 10
    assert h.percentile(99) == 1000


def test_percentile_single_bucket():
    """One distinct value: every percentile must land on it, including
    the p=0 and p=100 edges."""
    h = Histogram("lat")
    h.record(42, count=17)
    for p in (0, 1, 50, 99, 100):
        assert h.percentile(p) == 42


def test_percentile_rejects_out_of_range():
    import pytest

    h = Histogram("lat")
    h.record(1)
    with pytest.raises(ValueError):
        h.percentile(101)
    with pytest.raises(ValueError):
        h.percentile(-1)


def test_registry_deduplicates_by_name():
    reg = StatsRegistry()
    a = reg.counter("net.msgs")
    b = reg.counter("net.msgs")
    assert a is b
    a.add(3)
    assert reg.value("net.msgs") == 3
    assert reg.value("missing") == 0
    assert reg.value("missing", default=7) == 7


def test_registry_as_dict_sorted():
    reg = StatsRegistry()
    reg.counter("b").add(2)
    reg.counter("a").add(1)
    assert list(reg.as_dict()) == ["a", "b"]
    assert reg.as_dict() == {"a": 1, "b": 2}


def test_histogram_registry():
    reg = StatsRegistry()
    h = reg.histogram("lat")
    assert reg.histogram("lat") is h


def test_histograms_iterate_sorted():
    reg = StatsRegistry()
    reg.histogram("b.lat")
    reg.histogram("a.lat")
    assert [name for name, __ in reg.histograms()] == ["a.lat", "b.lat"]


def test_histogram_summaries_include_percentiles():
    reg = StatsRegistry()
    h = reg.histogram("lat")
    h.record(1)
    h.record(3)
    summary = reg.histogram_summaries()["lat"]
    assert summary == {"total": 2, "mean": 2.0, "min": 1, "max": 3,
                       "p50": 1, "p99": 3}
