"""EventQueue: ordering, determinism, same-cycle drain."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SimulationError
from repro.common.event_queue import EventQueue


def test_schedule_and_run_due_fires_in_fifo_order():
    q = EventQueue()
    order = []
    q.schedule(0, lambda: order.append("a"))
    q.schedule(0, lambda: order.append("b"))
    q.schedule(0, lambda: order.append("c"))
    assert q.run_due() == 3
    assert order == ["a", "b", "c"]


def test_future_events_do_not_fire_early():
    q = EventQueue()
    fired = []
    q.schedule(2, lambda: fired.append(1))
    assert q.run_due() == 0
    q.advance()
    assert q.run_due() == 0
    q.advance()
    assert q.run_due() == 1
    assert fired == [1]


def test_same_cycle_cascade_drains_fully():
    q = EventQueue()
    order = []

    def first():
        order.append("first")
        q.schedule(0, lambda: order.append("nested"))

    q.schedule(0, first)
    q.run_due()
    assert order == ["first", "nested"]


def test_negative_delay_rejected():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.schedule(-1, lambda: None)


def test_schedule_at_absolute_cycle():
    q = EventQueue()
    fired = []
    q.advance()
    q.advance()
    q.schedule_at(5, lambda: fired.append(q.now))
    q.advance_to_next_event()
    assert q.now == 5
    q.run_due()
    assert fired == [5]


def test_next_cycle_and_empty():
    q = EventQueue()
    assert q.empty
    with pytest.raises(SimulationError):
        q.next_cycle()
    q.schedule(3, lambda: None)
    assert q.next_cycle() == 3
    assert len(q) == 1


def test_advance_to_next_event_noop_when_due_now():
    q = EventQueue()
    q.schedule(0, lambda: None)
    q.advance_to_next_event()
    assert q.now == 0


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                max_size=40))
def test_events_fire_in_nondecreasing_cycle_order(delays):
    q = EventQueue()
    fired = []
    for delay in delays:
        q.schedule(delay, lambda d=delay: fired.append(q.now))
    while not q.empty:
        q.run_due()
        if not q.empty:
            q.advance_to_next_event()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
