"""Host-side profiler: exclusive attribution and system instrumentation."""

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.obs.profile import ProfileReport, Profiler, profiled_run
from repro.obs.scenarios import scenario_traces
from repro.sim.system import MulticoreSystem


def test_exclusive_attribution_with_fake_clock():
    ticks = [0.0]

    def clock():
        return ticks[0]

    prof = Profiler(clock=clock)

    def inner():
        ticks[0] += 1.0

    def outer():
        ticks[0] += 2.0
        wrapped_inner()
        ticks[0] += 3.0

    wrapped_inner = prof.wrap("inner", inner)
    prof.wrap("outer", outer)()
    # outer: 6 total, minus inner's 1 -> 5 exclusive.
    assert prof.totals["inner"] == 1.0
    assert prof.totals["outer"] == 5.0
    assert prof.calls == {"inner": 1, "outer": 1}


def test_report_shares_and_other():
    report = ProfileReport(10.0, {"core": 6.0, "network": 2.0},
                           {"core": 3, "network": 4})
    shares = report.shares()
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    assert report.totals["other"] == 2.0
    rendered = report.render()
    assert "core" in rendered and "total wall" in rendered
    payload = report.as_dict()
    assert payload["wall_seconds"] == 10.0
    assert payload["components"]["core"] == 6.0
    assert payload["calls"] == {"core": 3, "network": 4}


def test_profiled_run_attributes_components():
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    system = MulticoreSystem(params)
    system.load_program(scenario_traces("mp"))
    result, report = profiled_run(system)
    assert result.cycles > 0
    for component in ("core", "private_cache", "directory", "network",
                      "event_dispatch"):
        assert report.calls[component] > 0, component
    # The report also survives on the result as a plain dict.
    assert result.profile["wall_seconds"] == report.wall_seconds
    assert set(result.profile["components"]) >= {"core", "network", "other"}
    # Instrumentation must not distort the simulation itself.
    plain = MulticoreSystem(params)
    plain.load_program(scenario_traces("mp"))
    assert plain.run().cycles == result.cycles
