"""Transition coverage: observer, map algebra, JSONL, reports."""

import copy
import json

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode, LineAddr
from repro.obs.coverage import (
    COVERAGE_SCHEMA,
    CoverageMap,
    CoverageObserver,
    coverage_report,
    format_transition,
    read_coverage_jsonl,
    render_coverage,
    render_coverage_diff,
    transition_matrix,
    write_coverage_jsonl,
)
from repro.obs.scenarios import scenario_traces
from repro.sim.system import MulticoreSystem

T1 = ("cache", "S", "INV", "I", "ACK")
T2 = ("cache", "M", "FWD_GETS", "S", "COPYBACK+DATA")
T3 = ("dir", "S", "GETX", "BUSY_WRITE", "DATA+INV")


def observed_mp(backend="baseline"):
    mode = (CommitMode.OOO_WB if backend == "baseline" else CommitMode.OOO)
    params = table6_system("SLM", num_cores=4, commit_mode=mode,
                           backend=backend)
    system = MulticoreSystem(params)
    observer = system.observe_coverage(source="test")
    system.load_program(scenario_traces("mp"))
    system.run()
    return observer


def test_format_transition():
    assert format_transition(T1) == "cache: S --INV--> I [ACK]"


def test_observer_records_through_bus():
    observer = observed_mp()
    assert observer.counts, "mp run produced no transitions"
    for transition, sources in observer.counts.items():
        assert len(transition) == 5
        assert transition[0] in ("cache", "dir")
        assert all(isinstance(part, str) for part in transition)
        assert sources == {"test": sources["test"]}
        assert sources["test"] > 0


def test_observe_coverage_attaches_once():
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    system = MulticoreSystem(params)
    first = system.observe_coverage()
    assert system.observe_coverage(source="other") is first
    assert first.source == "run"


def test_plain_run_keeps_gates_closed():
    """Without observe_coverage() every component's gate stays None."""
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    system = MulticoreSystem(params)
    system.load_program(scenario_traces("mp"))
    system.run()
    for component in (*system.caches, *system.directories):
        assert component._cov is None
        assert component._cov_sends == []


def test_observer_deepcopy_is_shared_sink():
    observer = CoverageObserver("baseline")
    assert copy.deepcopy(observer) is observer


def test_map_add_absorb_merge_sum_counts():
    observer = CoverageObserver("baseline", source="a")
    observer.counts[T1] = {"a": 2}
    observer.counts[T2] = {"a": 1}
    cmap = observer.to_map()
    cmap.add("baseline", T1, "b", 3)
    other = CoverageMap()
    other.add("baseline", T1, "a", 5)
    other.add("tardis", T3, "c", 1)
    cmap.merge(other)
    assert cmap.backends == ["baseline", "tardis"]
    assert cmap.count("baseline", T1) == 10
    assert cmap.count("baseline", T2) == 1
    assert cmap.count("tardis", T3) == 1
    assert cmap.source_totals("baseline") == {"a": 8, "b": 3}


def test_jsonl_round_trip(tmp_path):
    observer = observed_mp()
    cmap = observer.to_map()
    path = tmp_path / "coverage.jsonl"
    count = write_coverage_jsonl(cmap, path, meta={"backend": "baseline"})
    assert count == len(cmap.transitions("baseline")) > 0
    first = json.loads(path.read_text().splitlines()[0])
    assert first["schema"] == COVERAGE_SCHEMA
    header, back = read_coverage_jsonl(path)
    assert header["meta"] == {"backend": "baseline"}
    assert back.records() == cmap.records()


def test_jsonl_merge_across_files_equals_in_memory(tmp_path):
    a = CoverageMap()
    a.add("baseline", T1, "corpus", 2)
    b = CoverageMap()
    b.add("baseline", T1, "fuzz", 3)
    b.add("tardis", T3, "corpus", 1)
    write_coverage_jsonl(a, tmp_path / "a.jsonl")
    write_coverage_jsonl(b, tmp_path / "b.jsonl")
    merged = CoverageMap()
    for name in ("a.jsonl", "b.jsonl"):
        __, loaded = read_coverage_jsonl(tmp_path / name)
        merged.merge(loaded)
    expected = CoverageMap()
    expected.merge(a)
    expected.merge(b)
    assert merged.records() == expected.records()


def test_jsonl_rejects_unknown_schema(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(json.dumps({"schema": "repro-coverage/99"}) + "\n")
    with pytest.raises(ValueError, match="unknown coverage schema"):
        read_coverage_jsonl(path)


def test_jsonl_rejects_missing_header(tmp_path):
    path = tmp_path / "headerless.jsonl"
    path.write_text(json.dumps({"backend": "baseline",
                                "transition": list(T1)}) + "\n")
    with pytest.raises(ValueError, match="missing"):
        read_coverage_jsonl(path)


def test_jsonl_rejects_empty_file(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty coverage file"):
        read_coverage_jsonl(empty)


def test_coverage_report_against_synthetic_alphabet():
    cmap = CoverageMap()
    cmap.add("baseline", T1, "corpus", 4)
    cmap.add("baseline", T3, "corpus", 1)  # not in the tiny alphabet
    alphabet = frozenset((T1, T2))
    report = coverage_report(cmap, "baseline", alphabet=alphabet)
    assert report["alphabet"] == 2
    assert report["covered"] == 1
    assert report["coverage"] == 0.5
    assert report["uncovered"] == [list(T2)]
    assert report["undeclared"] == [list(T3)]
    assert report["components"]["cache"]["covered"] == 1
    assert report["observations"] == 5


def test_report_against_declared_alphabet_has_no_undeclared():
    observer = observed_mp()
    report = coverage_report(observer.to_map(), "baseline")
    assert report["undeclared"] == []
    assert 0 < report["covered"] <= report["alphabet"]


def test_render_coverage_lists_uncovered_by_name():
    cmap = CoverageMap()
    cmap.add("baseline", T1, "corpus", 1)
    report = coverage_report(cmap, "baseline",
                             alphabet=frozenset((T1, T2)))
    text = render_coverage(report)
    assert "1/2" in text
    assert format_transition(T2) in text
    assert format_transition(T1) not in text  # covered: not listed


def test_render_coverage_diff_names_exclusive_events():
    cmap = CoverageMap()
    cmap.add("baseline", T1, "corpus", 1)
    cmap.add("tardis", ("cache", "S", "RENEW_ACK", "S", "-"), "corpus", 1)
    ra = coverage_report(cmap, "baseline", alphabet=frozenset((T1,)))
    rb = coverage_report(cmap, "tardis", alphabet=frozenset(
        (("cache", "S", "RENEW_ACK", "S", "-"),)))
    text = render_coverage_diff(ra, rb, cmap)
    assert "baseline vs tardis" in text
    assert "only in baseline: INV" in text
    assert "only in tardis: RENEW_ACK" in text


def test_transition_matrix_cells_sum_to_counts():
    observer = observed_mp()
    cmap = observer.to_map()
    states, events, rows = transition_matrix(cmap, "baseline", "cache")
    assert len(rows) == len(states)
    assert all(len(row) == len(events) for row in rows)
    total = sum(cmap.count("baseline", t)
                for t in cmap.transitions("baseline") if t[0] == "cache")
    assert sum(sum(row) for row in rows) == total
    # Alphabet-only states appear as all-cold rows, never vanish.
    assert set(states) >= {t[1] for t in cmap.transitions("baseline")
                           if t[0] == "cache"}


def test_tardis_backend_records_its_own_transitions():
    observer = observed_mp(backend="tardis")
    assert observer.counts
    report = coverage_report(observer.to_map(), "tardis")
    assert report["undeclared"] == []


def test_explorer_forks_record_into_one_sink():
    from repro.verification import combined_invariant, explore

    observer = CoverageObserver("baseline", source="explore")

    def setup(system):
        system.cores[0].issue_load(0x1000)
        system.cores[1].request_write(LineAddr(0x40))

    result = explore(setup, combined_invariant, lambda s: None,
                     coverage=observer)
    assert result.ok, result.violations
    assert observer.counts
    assert all(set(sources) == {"explore"}
               for sources in observer.counts.values())
