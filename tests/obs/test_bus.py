"""EventBus: subscription lifecycle, filtering, zero-cost gating."""

import pytest

from repro.common.errors import SimulationError
from repro.common.event_queue import EventQueue
from repro.obs.events import Event, EventBus, EventRecorder, Kind


def make_bus():
    events = EventQueue()
    return events, EventBus(events)


def test_inactive_until_subscribed():
    __, bus = make_bus()
    assert not bus.active
    sub = bus.subscribe(lambda e: None)
    assert bus.active
    sub.close()
    assert not bus.active


def test_emit_stamps_cycle_and_payload():
    events, bus = make_bus()
    seen = []
    bus.subscribe(seen.append)
    events.schedule(5, lambda: bus.emit(Kind.WB_BEGIN, 2, line=64, writer=1))
    while not events.empty:
        events.advance_to_next_event()
        events.run_due()
    assert seen == [Event(cycle=5, kind="wb.begin", tile=2,
                          args={"line": 64, "writer": 1})]


def test_kind_filter():
    __, bus = make_bus()
    all_events, only_wb = [], []
    bus.subscribe(all_events.append)
    bus.subscribe(only_wb.append, kinds=(Kind.WB_BEGIN,))
    bus.emit(Kind.WB_BEGIN, 0, line=0)
    bus.emit(Kind.NET_SEND, 0, msg_type="Inv")
    assert len(all_events) == 2
    assert [e.kind for e in only_wb] == ["wb.begin"]


def test_detach_any_order():
    __, bus = make_bus()
    first = bus.subscribe(lambda e: None)
    second = bus.subscribe(lambda e: None)
    third = bus.subscribe(lambda e: None)
    second.close()  # middle first
    third.close()
    assert bus.active  # first still attached
    first.close()
    assert not bus.active


def test_double_unsubscribe_raises():
    __, bus = make_bus()
    sub = bus.subscribe(lambda e: None)
    sub.close()
    with pytest.raises(SimulationError):
        bus.unsubscribe(sub)


def test_payload_may_reuse_kind_and_tile_keys():
    __, bus = make_bus()
    seen = []
    bus.subscribe(seen.append)
    bus.emit(Kind.MSHR_ALLOC, 3, kind="read", tile=7)
    assert seen[0].kind == "mshr.alloc"
    assert seen[0].tile == 3
    assert seen[0].args == {"kind": "read", "tile": 7}


def test_recorder_keeps_stream_and_detaches():
    __, bus = make_bus()
    recorder = EventRecorder(bus, kinds=(Kind.WB_BEGIN, Kind.WB_END))
    bus.emit(Kind.WB_BEGIN, 0, line=64)
    bus.emit(Kind.NET_SEND, 0, msg_type="Inv")
    bus.emit(Kind.WB_END, 0, line=64, duration=10)
    recorder.close()
    bus_was_active = bus.active
    assert [e.kind for e in recorder.events] == ["wb.begin", "wb.end"]
    assert not bus_was_active


def test_event_dict_round_trip():
    event = Event(cycle=9, kind="load.issue", tile=1,
                  args={"uid": 4, "line": 128})
    assert Event.from_dict(event.to_dict()) == event


def test_kind_all_lists_taxonomy():
    kinds = Kind.all()
    assert "wb.begin" in kinds and "net.send" in kinds
    assert len(kinds) == len(set(kinds))
