"""``litmus:<NAME>`` targets: corpus tests on the observability surface."""

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.obs.scenarios import (is_litmus_target, litmus_scenario_traces,
                                 scenario_traces)
from repro.sim.runner import run_blamed


def test_prefix_detection():
    assert is_litmus_target("litmus:MP+po+slow")
    assert not is_litmus_target("mp")
    assert not is_litmus_target("MP+po+slow")


def test_litmus_target_compiles_to_traces():
    traces = scenario_traces("litmus:MP+po+slow")
    assert len(traces) == 2  # MP: one writer, one reader
    assert all(trace for trace in traces)


def test_unknown_litmus_target_raises_keyerror():
    with pytest.raises(KeyError, match=r"NO\+SUCH"):
        litmus_scenario_traces("litmus:NO+SUCH+TEST")


def test_litmus_target_runs_with_blame():
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    result, graph = run_blamed(scenario_traces("litmus:MP+po+slow"), params)
    assert result.cycles > 0
    assert len(graph.nodes) > 0
