"""Trace diffing: alignment by instruction identity, stall deltas."""

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.obs.diff import DIFF_SCHEMA, diff_traces, render_diff
from repro.obs.scenarios import scenario_traces
from repro.sim.runner import run_observed


def _observed(mode):
    params = table6_system("SLM", num_cores=4, commit_mode=mode)
    return run_observed(scenario_traces("mp"), params)


@pytest.fixture(scope="module")
def mp_diff():
    result_wb, events_wb = _observed(CommitMode.OOO_WB)
    result_ooo, events_ooo = _observed(CommitMode.OOO)
    return diff_traces(events_wb, events_ooo,
                       cycles=(result_wb.cycles, result_ooo.cycles),
                       labels=("ooo-wb", "ooo"))


def test_diff_schema_and_sides(mp_diff):
    assert mp_diff["schema"] == DIFF_SCHEMA
    assert mp_diff["a"]["label"] == "ooo-wb"
    assert mp_diff["b"]["label"] == "ooo"
    assert mp_diff["a"]["events"] > 0 and mp_diff["b"]["events"] > 0


def test_diff_reports_stall_budget_delta(mp_diff):
    deltas = mp_diff["stall_deltas"]
    # Ablating WritersBlock removes the deferred-Ack write stalls: the
    # write-stall budget must shrink (a negative wb-minus-ablated delta
    # would read positive here since ooo-wb is side a).
    assert deltas["write_stall_cycles"] < 0
    assert deltas["wb_cycles"] < 0
    assert mp_diff["b"]["wb_episodes"] < mp_diff["a"]["wb_episodes"]
    assert deltas["write_stall_causes"]["writersblock.deferred_ack"] < 0


def test_diff_aligns_loads_by_identity(mp_diff):
    assert mp_diff["aligned_loads"] > 0
    for entry in mp_diff["diverging_loads"]:
        assert entry["delta"] == entry["latency_b"] - entry["latency_a"]
    assert len(mp_diff["diverging_loads"]) <= mp_diff["diverging_load_count"]


def test_diff_of_identical_runs_is_null(tmp_path):
    result, events = _observed(CommitMode.OOO_WB)
    payload = diff_traces(events, events,
                          cycles=(result.cycles, result.cycles))
    deltas = payload["stall_deltas"]
    assert deltas["cycles"] == 0
    assert deltas["write_stall_cycles"] == 0
    assert all(v == 0 for v in deltas["write_stall_causes"].values())
    assert payload["diverging_load_count"] == 0


def test_render_diff_is_printable(mp_diff):
    text = render_diff(mp_diff)
    assert "trace diff: ooo-wb vs ooo" in text
    assert "stall budget" in text
