"""Span reconstruction on the directed ``mp`` scenario.

The scenario forces exactly one Nacked invalidation, so the span layer
and the pre-existing directory counters must agree exactly — the span
view is a retelling of the same episode, not a separate estimate.
"""

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.obs.events import Kind
from repro.obs.scenarios import scenario_traces
from repro.sim.runner import run_observed


def observed_mp():
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    return run_observed(scenario_traces("mp"), params)


def test_exactly_one_writersblock_span_matching_counters():
    result, events = observed_mp()
    wb_spans = [s for s in result.spans if s.cat == "writersblock"]
    assert len(wb_spans) == 1
    assert result.counter("dir.writersblock_entered") == 1
    span = wb_spans[0]
    assert not span.open
    hist = result.histograms["dir.writersblock_duration"]
    assert hist["total"] == 1
    assert span.duration == hist["max"] == hist["min"]
    # The directory's own wb.end event carries the same duration.
    ends = [e for e in events if e.kind == Kind.WB_END]
    assert len(ends) == 1
    assert ends[0].args["duration"] == span.duration


def test_lockdown_span_brackets_the_writersblock():
    result, events = observed_mp()
    lockdowns = [s for s in result.spans if s.cat == "lockdown"]
    assert len(lockdowns) == 1
    span = lockdowns[0]
    assert not span.open and span.duration > 0
    # The Nack lands while the lockdown is live.
    nacks = [e for e in events if e.kind == Kind.INV_NACKED]
    assert len(nacks) == 1
    assert span.start <= nacks[0].cycle <= span.end
    # ...and the deferred ack goes out when the lockdown lifts.
    acks = [e for e in events if e.kind == Kind.DEFERRED_ACK]
    assert len(acks) == 1
    assert acks[0].cycle == span.end


def test_load_lifetimes_closed_and_annotated():
    result, __ = observed_mp()
    loads = [s for s in result.spans if s.cat == "load"]
    assert loads
    for span in loads:
        assert not span.open
        assert "perform_cycle" in span.args
        assert span.start <= span.args["perform_cycle"] <= span.end


def test_span_summaries_on_result():
    result, __ = observed_mp()
    summary = result.span_summaries["writersblock"]
    assert summary["count"] == 1
    assert summary["min"] == summary["max"] == summary["p50"] == summary["p99"]
    # Span durations also feed obs.* histograms in the registry.
    assert result.histograms["obs.writersblock_cycles"]["total"] == 1


def test_unobserved_run_has_no_spans():
    from repro.sim.runner import run_traces

    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    result = run_traces(scenario_traces("mp"), params)
    assert result.spans == []
    assert result.span_summaries == {}
    assert "obs.writersblock_cycles" not in result.histograms
