"""Exporter round trips: JSONL events and Chrome trace_event JSON."""

import json

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.obs.export import (
    TRACE_SCHEMA,
    TRACKS,
    load_chrome_trace,
    read_events_jsonl,
    read_trace_jsonl,
    trace_spans,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.scenarios import scenario_traces
from repro.sim.runner import run_observed


def observed_mp():
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    return run_observed(scenario_traces("mp"), params)


def test_jsonl_round_trip(tmp_path):
    result, events = observed_mp()
    path = tmp_path / "events.jsonl"
    assert write_events_jsonl(events, path) == len(events) > 0
    assert read_events_jsonl(path) == events


def test_jsonl_header_and_meta_round_trip(tmp_path):
    __, events = observed_mp()
    path = tmp_path / "events.jsonl"
    write_events_jsonl(events, path, meta={"workload": "mp", "cores": 4})
    first = json.loads(path.read_text().splitlines()[0])
    assert first["schema"] == TRACE_SCHEMA
    header, back = read_trace_jsonl(path)
    assert header["meta"] == {"workload": "mp", "cores": 4}
    assert back == events


def test_jsonl_rejects_unknown_schema(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(json.dumps({"schema": "repro-trace/99"}) + "\n")
    with pytest.raises(ValueError, match="unknown trace schema"):
        read_trace_jsonl(path)


def test_jsonl_rejects_missing_header(tmp_path):
    __, events = observed_mp()
    path = tmp_path / "headerless.jsonl"
    with open(path, "w") as handle:
        for event in events[:3]:
            handle.write(json.dumps(event.to_dict()) + "\n")
    with pytest.raises(ValueError, match="missing"):
        read_trace_jsonl(path)


def test_jsonl_rejects_empty_file(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty trace file"):
        read_trace_jsonl(empty)


# Every JSONL schema family ships the same three header guards; pin
# them together so a new exporter can't quietly skip one.
SCHEMA_READERS = [
    pytest.param("repro-trace", read_trace_jsonl,
                 "unknown trace schema", "empty trace file",
                 id="trace"),
    pytest.param("repro-metrics", None,
                 "unknown metrics schema", "empty metrics file",
                 id="metrics"),
    pytest.param("repro-coverage", None,
                 "unknown coverage schema", "empty coverage file",
                 id="coverage"),
]


def _reader_for(family, reader):
    if reader is not None:
        return reader
    if family == "repro-metrics":
        from repro.obs.metrics import read_metrics_jsonl
        return read_metrics_jsonl
    from repro.obs.coverage import read_coverage_jsonl
    return read_coverage_jsonl


@pytest.mark.parametrize("family,reader,unknown_match,empty_match",
                         SCHEMA_READERS)
def test_all_schemas_reject_unknown_version(tmp_path, family, reader,
                                            unknown_match, empty_match):
    path = tmp_path / "future.jsonl"
    path.write_text(json.dumps({"schema": f"{family}/99"}) + "\n")
    with pytest.raises(ValueError, match=unknown_match):
        _reader_for(family, reader)(path)


@pytest.mark.parametrize("family,reader,unknown_match,empty_match",
                         SCHEMA_READERS)
def test_all_schemas_reject_missing_header(tmp_path, family, reader,
                                           unknown_match, empty_match):
    path = tmp_path / "headerless.jsonl"
    path.write_text(json.dumps({"some": "record"}) + "\n")
    with pytest.raises(ValueError, match="missing"):
        _reader_for(family, reader)(path)


@pytest.mark.parametrize("family,reader,unknown_match,empty_match",
                         SCHEMA_READERS)
def test_all_schemas_reject_empty_file(tmp_path, family, reader,
                                       unknown_match, empty_match):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match=empty_match):
        _reader_for(family, reader)(path)


def test_metrics_round_trip_preserves_known_version(tmp_path):
    from repro.obs.metrics import (METRICS_SCHEMA, read_metrics_jsonl,
                                   write_metrics_jsonl)
    from repro.sim.runner import run_sampled

    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    result = run_sampled(scenario_traces("mp"), params, period=100)
    path = tmp_path / "metrics.jsonl"
    write_metrics_jsonl(result.telemetry, path)
    assert json.loads(path.read_text().splitlines()[0])["schema"] \
        == METRICS_SCHEMA
    back = read_metrics_jsonl(path)
    assert back["samples"] == result.telemetry["samples"]


def test_coverage_round_trip_preserves_known_version(tmp_path):
    from repro.obs.coverage import (COVERAGE_SCHEMA, CoverageMap,
                                    read_coverage_jsonl,
                                    write_coverage_jsonl)

    cmap = CoverageMap()
    cmap.add("baseline", ("cache", "S", "INV", "I", "ACK"), "corpus", 2)
    path = tmp_path / "coverage.jsonl"
    write_coverage_jsonl(cmap, path)
    assert json.loads(path.read_text().splitlines()[0])["schema"] \
        == COVERAGE_SCHEMA
    __, back = read_coverage_jsonl(path)
    assert back.records() == cmap.records()


def test_jsonl_streams_to_stdout(capsys):
    __, events = observed_mp()
    count = write_events_jsonl(events[:5], "-")
    assert count == 5
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 6  # header + 5 events
    assert json.loads(lines[0])["schema"] == TRACE_SCHEMA


def test_chrome_trace_round_trip(tmp_path):
    result, __ = observed_mp()
    path = tmp_path / "trace.json"
    written = write_chrome_trace(result.spans, path,
                                 metadata={"workload": "mp"})
    assert written == len(result.spans)
    payload = load_chrome_trace(path)
    assert payload["otherData"]["workload"] == "mp"
    back = trace_spans(payload)
    assert len(back) == len(result.spans)
    originals = {(s.cat, s.name, s.tile, s.start, s.end)
                 for s in result.spans}
    assert {(s.cat, s.name, s.tile, s.start, s.end)
            for s in back} == originals


def test_chrome_trace_names_tile_tracks(tmp_path):
    result, __ = observed_mp()
    path = tmp_path / "trace.json"
    write_chrome_trace(result.spans, path)
    payload = load_chrome_trace(path)
    meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    tiles = {s.tile for s in result.spans}
    process_names = {e["pid"]: e["args"]["name"] for e in meta
                     if e["name"] == "process_name"}
    assert process_names == {tile: f"tile{tile}" for tile in tiles}
    # Every tile gets one named thread per span category.
    for tile in tiles:
        threads = {e["tid"]: e["args"]["name"] for e in meta
                   if e["name"] == "thread_name" and e["pid"] == tile}
        assert threads == {tid: cat for cat, tid in TRACKS.items()}
    # Span events land on their category's track.
    for event in payload["traceEvents"]:
        if event["ph"] == "X":
            assert event["tid"] == TRACKS[event["cat"]]


def test_load_chrome_trace_rejects_non_trace(tmp_path):
    import json

    import pytest

    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"nope": 1}))
    with pytest.raises(ValueError):
        load_chrome_trace(path)
