"""Exporter round trips: JSONL events and Chrome trace_event JSON."""

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.obs.export import (
    TRACKS,
    load_chrome_trace,
    read_events_jsonl,
    trace_spans,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.scenarios import scenario_traces
from repro.sim.runner import run_observed


def observed_mp():
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    return run_observed(scenario_traces("mp"), params)


def test_jsonl_round_trip(tmp_path):
    result, events = observed_mp()
    path = tmp_path / "events.jsonl"
    assert write_events_jsonl(events, path) == len(events) > 0
    assert read_events_jsonl(path) == events


def test_chrome_trace_round_trip(tmp_path):
    result, __ = observed_mp()
    path = tmp_path / "trace.json"
    written = write_chrome_trace(result.spans, path,
                                 metadata={"workload": "mp"})
    assert written == len(result.spans)
    payload = load_chrome_trace(path)
    assert payload["otherData"]["workload"] == "mp"
    back = trace_spans(payload)
    assert len(back) == len(result.spans)
    originals = {(s.cat, s.name, s.tile, s.start, s.end)
                 for s in result.spans}
    assert {(s.cat, s.name, s.tile, s.start, s.end)
            for s in back} == originals


def test_chrome_trace_names_tile_tracks(tmp_path):
    result, __ = observed_mp()
    path = tmp_path / "trace.json"
    write_chrome_trace(result.spans, path)
    payload = load_chrome_trace(path)
    meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    tiles = {s.tile for s in result.spans}
    process_names = {e["pid"]: e["args"]["name"] for e in meta
                     if e["name"] == "process_name"}
    assert process_names == {tile: f"tile{tile}" for tile in tiles}
    # Every tile gets one named thread per span category.
    for tile in tiles:
        threads = {e["tid"]: e["args"]["name"] for e in meta
                   if e["name"] == "thread_name" and e["pid"] == tile}
        assert threads == {tid: cat for cat, tid in TRACKS.items()}
    # Span events land on their category's track.
    for event in payload["traceEvents"]:
        if event["ph"] == "X":
            assert event["tid"] == TRACKS[event["cat"]]


def test_load_chrome_trace_rejects_non_trace(tmp_path):
    import json

    import pytest

    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"nope": 1}))
    with pytest.raises(ValueError):
        load_chrome_trace(path)
