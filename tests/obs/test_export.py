"""Exporter round trips: JSONL events and Chrome trace_event JSON."""

import json

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.obs.export import (
    TRACE_SCHEMA,
    TRACKS,
    load_chrome_trace,
    read_events_jsonl,
    read_trace_jsonl,
    trace_spans,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.scenarios import scenario_traces
from repro.sim.runner import run_observed


def observed_mp():
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    return run_observed(scenario_traces("mp"), params)


def test_jsonl_round_trip(tmp_path):
    result, events = observed_mp()
    path = tmp_path / "events.jsonl"
    assert write_events_jsonl(events, path) == len(events) > 0
    assert read_events_jsonl(path) == events


def test_jsonl_header_and_meta_round_trip(tmp_path):
    __, events = observed_mp()
    path = tmp_path / "events.jsonl"
    write_events_jsonl(events, path, meta={"workload": "mp", "cores": 4})
    first = json.loads(path.read_text().splitlines()[0])
    assert first["schema"] == TRACE_SCHEMA
    header, back = read_trace_jsonl(path)
    assert header["meta"] == {"workload": "mp", "cores": 4}
    assert back == events


def test_jsonl_rejects_unknown_schema(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(json.dumps({"schema": "repro-trace/99"}) + "\n")
    with pytest.raises(ValueError, match="unknown trace schema"):
        read_trace_jsonl(path)


def test_jsonl_rejects_missing_header(tmp_path):
    __, events = observed_mp()
    path = tmp_path / "headerless.jsonl"
    with open(path, "w") as handle:
        for event in events[:3]:
            handle.write(json.dumps(event.to_dict()) + "\n")
    with pytest.raises(ValueError, match="missing"):
        read_trace_jsonl(path)


def test_jsonl_rejects_empty_file(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty trace file"):
        read_trace_jsonl(empty)


def test_jsonl_streams_to_stdout(capsys):
    __, events = observed_mp()
    count = write_events_jsonl(events[:5], "-")
    assert count == 5
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 6  # header + 5 events
    assert json.loads(lines[0])["schema"] == TRACE_SCHEMA


def test_chrome_trace_round_trip(tmp_path):
    result, __ = observed_mp()
    path = tmp_path / "trace.json"
    written = write_chrome_trace(result.spans, path,
                                 metadata={"workload": "mp"})
    assert written == len(result.spans)
    payload = load_chrome_trace(path)
    assert payload["otherData"]["workload"] == "mp"
    back = trace_spans(payload)
    assert len(back) == len(result.spans)
    originals = {(s.cat, s.name, s.tile, s.start, s.end)
                 for s in result.spans}
    assert {(s.cat, s.name, s.tile, s.start, s.end)
            for s in back} == originals


def test_chrome_trace_names_tile_tracks(tmp_path):
    result, __ = observed_mp()
    path = tmp_path / "trace.json"
    write_chrome_trace(result.spans, path)
    payload = load_chrome_trace(path)
    meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    tiles = {s.tile for s in result.spans}
    process_names = {e["pid"]: e["args"]["name"] for e in meta
                     if e["name"] == "process_name"}
    assert process_names == {tile: f"tile{tile}" for tile in tiles}
    # Every tile gets one named thread per span category.
    for tile in tiles:
        threads = {e["tid"]: e["args"]["name"] for e in meta
                   if e["name"] == "thread_name" and e["pid"] == tile}
        assert threads == {tid: cat for cat, tid in TRACKS.items()}
    # Span events land on their category's track.
    for event in payload["traceEvents"]:
        if event["ph"] == "X":
            assert event["tid"] == TRACKS[event["cat"]]


def test_load_chrome_trace_rejects_non_trace(tmp_path):
    import json

    import pytest

    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"nope": 1}))
    with pytest.raises(ValueError):
        load_chrome_trace(path)
