"""Telemetry sampler and the ``repro-metrics/1`` stream.

Covers the tentpole contracts: period-boundary stamping, the versioned
JSONL header (unknown versions are rejected, not misread), offline
re-derivation of summaries from a saved stream, and the zero-impact
guarantee for unsampled runs (no ``telemetry`` key, identical results).
"""

import json

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.obs.metrics import (DEFAULT_PERIOD, GAUGE_KEYS, METRICS_SCHEMA,
                               MetricsSampler, gauge_capacities,
                               read_metrics_jsonl, sample_cycles,
                               summarize_metrics, tile_series,
                               write_metrics_jsonl)
from repro.obs.scenarios import scenario_traces
from repro.sim.runner import run_sampled, run_traces
from repro.sim.system import MulticoreSystem


def _params(cores=4):
    return table6_system("SLM", num_cores=cores,
                         commit_mode=CommitMode.OOO_WB)


def _sampled_mp(period=100):
    return run_sampled(scenario_traces("mp"), _params(), period=period)


# ----------------------------------------------------------- the sampler
def test_period_must_be_positive():
    system = MulticoreSystem(_params())
    with pytest.raises(ValueError, match="period"):
        MetricsSampler(system, period=0)


def test_samples_land_on_period_boundaries():
    result = _sampled_mp(period=100)
    cycles = sample_cycles(result.telemetry)
    assert cycles == sorted(cycles)
    assert len(cycles) == len(set(cycles))  # no duplicate stamps
    # Every sample except the final end-of-run flush sits at or past a
    # period boundary it was triggered by; the final one is the end of
    # the event clock (which can outlive the last core's done cycle
    # while in-flight messages drain).
    assert cycles[-1] == result.telemetry["cycles"]
    assert cycles[-1] >= result.cycles
    for stamp in cycles[:-1]:
        assert stamp >= 100


def test_final_flush_not_duplicated_when_run_ends_on_boundary():
    system = MulticoreSystem(_params())
    sampler = system.sample_metrics(50)
    sampler.take(100)
    sampler.finish(100)  # run ended exactly on the last sample's cycle
    assert [s["cycle"] for s in sampler.samples] == [100]


def test_boundary_rollover_collapses_idle_gaps():
    system = MulticoreSystem(_params())
    sampler = system.sample_metrics(100)
    assert sampler.next_cycle == 100
    sampler.take(730)  # event queue fast-forwarded over 7 boundaries
    assert sampler.next_cycle == 800  # not 200: skipped boundaries collapse


def test_payload_shape_and_capacities():
    result = _sampled_mp()
    payload = result.telemetry
    assert payload["schema"] == METRICS_SCHEMA
    assert payload["tiles"] == 4
    assert tuple(payload["gauges"]) == GAUGE_KEYS
    assert set(payload["capacities"]) == set(GAUGE_KEYS)
    for sample in payload["samples"]:
        assert set(sample) == {"cycle", *GAUGE_KEYS}
        for gauge in GAUGE_KEYS:
            assert len(sample[gauge]) == 4


def test_gauge_capacities_cover_catalog():
    caps = gauge_capacities(_params())
    assert set(caps) == set(GAUGE_KEYS)
    assert caps["lq"] > 0 and caps["mshr"] > 0
    assert caps["dirq"] is None and caps["link"] is None


# ------------------------------------------------------------- the JSONL
def test_jsonl_roundtrip(tmp_path):
    payload = _sampled_mp().telemetry
    path = tmp_path / "m.jsonl"
    count = write_metrics_jsonl(payload, path)
    assert count == len(payload["samples"])
    assert read_metrics_jsonl(path) == payload


def test_unknown_schema_version_rejected(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text(json.dumps({"schema": "repro-metrics/99"}) + "\n")
    with pytest.raises(ValueError, match="unknown metrics schema"):
        read_metrics_jsonl(path)


def test_missing_header_rejected(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text(json.dumps({"cycle": 100, "lq": [0]}) + "\n")
    with pytest.raises(ValueError, match="header"):
        read_metrics_jsonl(path)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text("")
    with pytest.raises(ValueError, match="empty"):
        read_metrics_jsonl(path)


def test_offline_summary_matches_live_byte_for_byte(tmp_path):
    """Everything the tables/dashboard derive must be recomputable from
    the saved stream alone."""
    payload = _sampled_mp().telemetry
    live = json.dumps(summarize_metrics(payload), sort_keys=True)
    path = tmp_path / "m.jsonl"
    write_metrics_jsonl(payload, path)
    offline = json.dumps(summarize_metrics(read_metrics_jsonl(path)),
                         sort_keys=True)
    assert offline == live


# ------------------------------------------------------------- analysis
def test_tile_series_shape_and_unknown_gauge():
    payload = _sampled_mp().telemetry
    rows = tile_series(payload, "lq")
    assert len(rows) == payload["tiles"]
    assert all(len(row) == len(payload["samples"]) for row in rows)
    with pytest.raises(KeyError, match="unknown gauge"):
        tile_series(payload, "bogus")


def test_summary_normalizes_link_by_window():
    payload = {
        "schema": METRICS_SCHEMA, "period": 100, "tiles": 1,
        "cycles": 200, "gauges": ["link"], "capacities": {"link": None},
        "samples": [{"cycle": 100, "link": [50]},
                    {"cycle": 200, "link": [100]}],
    }
    row = summarize_metrics(payload)["gauges"]["link"]
    assert row["mean"] == pytest.approx(0.75)  # (0.5 + 1.0) / 2
    assert row["peak"] == pytest.approx(1.0)
    assert row["saturation"] == pytest.approx(0.5)  # second window full


def test_summary_saturation_against_capacity():
    payload = {
        "schema": METRICS_SCHEMA, "period": 10, "tiles": 2,
        "cycles": 20, "gauges": ["lq"], "capacities": {"lq": 4},
        "samples": [{"cycle": 10, "lq": [4, 1]},
                    {"cycle": 20, "lq": [2, 4]}],
    }
    row = summarize_metrics(payload)["gauges"]["lq"]
    assert row["saturation"] == pytest.approx(0.5)  # 2 of 4 points at cap
    assert row["hottest_tile"] == 0  # 6 total vs 5


# ------------------------------------------- zero impact when not sampling
def test_unsampled_result_has_no_telemetry_key():
    result = run_traces(scenario_traces("mp"), _params())
    assert result.telemetry is None
    assert "telemetry" not in result.to_dict()


def test_sampling_does_not_perturb_the_simulation():
    traces = scenario_traces("mp")
    plain = run_traces(traces, _params())
    sampled = run_sampled(traces, _params(), period=DEFAULT_PERIOD)
    assert sampled.cycles == plain.cycles
    assert sampled.committed == plain.committed
    base = plain.to_dict()
    mirrored = sampled.to_dict()
    mirrored.pop("telemetry")
    assert mirrored == base
