"""Causal graph construction, blame attribution, offline round trips."""

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.obs.blame import BLAME_SCHEMA, WB_DEFER, build_blame, render_blame
from repro.obs.causal import CausalGraph, EdgeType
from repro.obs.export import read_events_jsonl, write_events_jsonl
from repro.obs.scenarios import scenario_traces
from repro.sim.runner import run_blamed, run_observed


def _params(mode=CommitMode.OOO_WB):
    return table6_system("SLM", num_cores=4, commit_mode=mode)


@pytest.fixture(scope="module")
def mp_run():
    return run_blamed(scenario_traces("mp"), _params())


@pytest.fixture(scope="module")
def sos_run():
    return run_blamed(scenario_traces("sos"), _params())


def test_mp_graph_reconstructs_writersblock_episode(mp_run):
    __, graph = mp_run
    assert graph.nodes and graph.edges
    finished = [ep for ep in graph.episodes if ep.end_cycle is not None]
    assert finished, "mp under ooo-wb must close a WritersBlock episode"
    episode = finished[0]
    # The paper's chain: a Nacked invalidation opened the episode, at
    # least one write parked behind it, and deferred Acks closed it.
    assert episode.nack is not None
    assert episode.blocked
    assert episode.defers
    assert episode.end_cycle > episode.begin_cycle


def test_mp_graph_edge_taxonomy(mp_run):
    __, graph = mp_run
    etypes = {edge.etype for edge in graph.edges}
    for expected in (EdgeType.CHAIN, EdgeType.NACK, EdgeType.ENTER,
                     EdgeType.BLOCK, EdgeType.RELEASE, EdgeType.DEFER):
        assert expected in etypes, f"missing {expected} edges"


def test_sos_graph_has_tearoff_and_bind_edges(sos_run):
    __, graph = sos_run
    etypes = {edge.etype for edge in graph.edges}
    assert EdgeType.TEAROFF in etypes
    assert EdgeType.BIND in etypes
    assert any(ep.tearoffs for ep in graph.episodes)


def test_edges_point_backward_in_stream_order(mp_run, sos_run):
    # The critical-path DP assumes edge lists sorted by destination
    # with src < dst; violating either silently corrupts the path.
    for __, graph in (mp_run, sos_run):
        for edge in graph.edges:
            assert edge.src < edge.dst
        dsts = [edge.dst for edge in graph.edges]
        assert dsts == sorted(dsts)


def test_mp_blame_attributes_write_stalls(mp_run):
    result, __ = mp_run
    blame = result.blame
    assert blame["schema"] == BLAME_SCHEMA
    ws = blame["write_stalls"]
    assert ws["total_cycles"] > 0
    # Acceptance gate: >= 95% of blocked-write stall cycles attributed,
    # with the WritersBlock deferred-Ack chain as the top blame entry.
    assert ws["coverage"] >= 0.95
    assert blame["blame_tree"]
    assert blame["blame_tree"][0]["cause"].startswith(WB_DEFER)
    assert blame["blame_tree"][0]["children"]


def test_mp_commit_stalls_accounted(mp_run):
    result, __ = mp_run
    cs = result.blame["commit_stalls"]
    assert cs["total_cycles"] > 0
    assert set(cs["causes"]) <= {"writersblock", "lockdown", "mshr",
                                 "network", "other"}
    assert sum(cs["causes"].values()) == cs["total_cycles"]


def test_mp_critical_path_walks_the_wb_chain(mp_run):
    result, __ = mp_run
    path = result.blame["critical_path"]
    kinds = [hop["kind"] for hop in path]
    assert "wb.begin" in kinds
    assert path[-1]["cycle"] >= path[0]["cycle"]
    # Hop waits must sum to the path's elapsed cycles.
    assert sum(hop["dcycles"] for hop in path) == \
        path[-1]["cycle"] - path[0]["cycle"]


def test_render_blame_is_printable(mp_run):
    result, __ = mp_run
    text = render_blame(result.blame)
    assert "write-stall blame tree" in text
    assert "stall budgets" in text
    assert "critical path" in text


@pytest.mark.parametrize("scenario", ["mp", "sos"])
def test_offline_graph_matches_live_graph(scenario, tmp_path):
    """JSONL export -> reload -> rebuilt graph equals the live one."""
    params = _params()
    __, live_graph = run_blamed(scenario_traces(scenario), params)
    __, events = run_observed(scenario_traces(scenario), params)
    path = tmp_path / f"{scenario}.jsonl"
    write_events_jsonl(events, path, meta={"workload": scenario})
    loaded = read_events_jsonl(path)
    assert loaded == events
    rebuilt = CausalGraph.from_events(loaded)
    assert rebuilt.signature() == live_graph.signature()
    assert build_blame(rebuilt) == build_blame(live_graph)


def test_blame_payload_is_engine_safe(mp_run):
    """No uids or other per-process identifiers leak into the payload."""
    import json

    result, __ = mp_run
    text = json.dumps(result.blame, sort_keys=True)
    assert json.loads(text) == result.blame
    assert '"uid"' not in text
