"""Observability-overhead regression gate.

Running with the span tracker and the causal-graph subscriber attached
is allowed to cost real time — every emit allocates an Event and the
graph links it — but the cost must stay bounded.  Measured on the
reference machine the full-observation litmus battery runs ~1.7x slower
than the bus-off default; the gate is set at 4x so cross-machine noise
cannot trip it while an accidental O(n^2) subscriber still does.
"""

from repro.perf.harness import run_group

#: Max allowed slowdown of observed runs vs bus-off runs (documented in
#: docs/performance.md; measured ~1.7x on the reference machine).
MAX_OVERHEAD = 4.0


def test_observed_litmus_overhead_is_bounded():
    base = run_group("litmus", reps=2, warmup=1)
    observed = run_group("litmus", reps=2, warmup=1, observe=True)
    assert observed.sim_cycles == base.sim_cycles  # determinism unchanged
    ratio = base.sims_per_sec / max(observed.sims_per_sec, 1e-9)
    assert ratio <= MAX_OVERHEAD, (
        f"observed litmus run is {ratio:.2f}x slower than bus-off "
        f"(gate: {MAX_OVERHEAD:.1f}x); a subscriber or emit path "
        "likely regressed")
