"""Observability-overhead regression gates.

Running with the span tracker and the causal-graph subscriber attached
is allowed to cost real time — every emit allocates an Event and the
graph links it — but the cost must stay bounded.  Measured on the
reference machine the full-observation litmus battery runs ~1.7x slower
than the bus-off default; the gate is set at 4x so cross-machine noise
cannot trip it while an accidental O(n^2) subscriber still does.

The telemetry sampler is held to a tighter bar: gauges are read lazily
on period boundaries only, so sampling at the default period must cost
well under the event-bus observers — measured ~1.05x, gated at 2x.
"""

from repro.obs.metrics import DEFAULT_PERIOD
from repro.perf.harness import run_group

#: Max allowed slowdown of observed runs vs bus-off runs (documented in
#: docs/performance.md; measured ~1.7x on the reference machine).
MAX_OVERHEAD = 4.0

#: Max allowed slowdown with the telemetry sampler at the default
#: period (documented in docs/observability.md; measured ~1.05x).
MAX_SAMPLING_OVERHEAD = 2.0


def test_observed_litmus_overhead_is_bounded():
    base = run_group("litmus", reps=2, warmup=1)
    observed = run_group("litmus", reps=2, warmup=1, observe=True)
    assert observed.sim_cycles == base.sim_cycles  # determinism unchanged
    ratio = base.sims_per_sec / max(observed.sims_per_sec, 1e-9)
    assert ratio <= MAX_OVERHEAD, (
        f"observed litmus run is {ratio:.2f}x slower than bus-off "
        f"(gate: {MAX_OVERHEAD:.1f}x); a subscriber or emit path "
        "likely regressed")


def test_sampled_litmus_overhead_is_bounded():
    base = run_group("litmus", reps=2, warmup=1)
    sampled = run_group("litmus", reps=2, warmup=1, sample=DEFAULT_PERIOD)
    assert sampled.sim_cycles == base.sim_cycles  # determinism unchanged
    ratio = base.sims_per_sec / max(sampled.sims_per_sec, 1e-9)
    assert ratio <= MAX_SAMPLING_OVERHEAD, (
        f"sampled litmus run is {ratio:.2f}x slower than sampler-off "
        f"(gate: {MAX_SAMPLING_OVERHEAD:.1f}x); a gauge read moved into "
        "the hot path or the snapshot walk regressed")
