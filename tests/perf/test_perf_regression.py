"""Performance regression gates.

Two kinds of check:

* **Throughput**: measure a corpus group with the ``repro perf`` harness
  and compare sims/sec against the committed ``BENCH_perf.json``.  The
  tier-1 bound is deliberately generous (CI machines differ wildly from
  the machine that produced the reference); ``--slow`` runs a longer
  measurement with a tight bound, which is the one that catches real
  same-machine regressions.
* **Allocation discipline**: with no observers subscribed, a run must
  construct zero ``Event`` and zero ``Span`` objects — the observability
  layer's zero-cost contract.  Enforced by replacing both constructors
  with booby traps.

The committed artifact itself is also sanity-checked: it must record the
hot-path overhaul's headline speedup over the pre-overhaul baseline.
"""

import json
import pathlib

import pytest

from repro.perf.corpus import scenario_cases
from repro.perf.harness import (BENCH_SCHEMA, DEFAULT_GROUPS, load_baseline,
                                run_case, run_group)
from repro.sim.system import MulticoreSystem

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
COMMITTED_BENCH = REPO_ROOT / "benchmarks" / "out" / "BENCH_perf.json"
COMMITTED_BASELINE = REPO_ROOT / "benchmarks" / "perf_baseline.json"

#: Tier-1 tolerance: catastrophic-regression net only.
LOOSE_FLOOR = 0.15
#: --slow tolerance: meaningful on the machine that committed the bench.
TIGHT_FLOOR = 0.5


def _committed():
    payload = load_baseline(COMMITTED_BENCH)
    if payload is None:
        pytest.fail(f"{COMMITTED_BENCH} is missing; run "
                    "`repro perf` and commit the result")
    return payload


def test_committed_bench_is_valid():
    payload = _committed()
    assert payload["schema"] == BENCH_SCHEMA
    for group in DEFAULT_GROUPS:
        bench = payload["benchmarks"][group]
        assert bench["sims_per_sec"] > 0
        assert bench["alloc_peak_kb"] > 0


def test_committed_bench_records_overhaul_speedup():
    """The committed artifact must embed the comparison against the
    pre-overhaul baseline and show the >=2x litmus speedup the hot-path
    work claims.  This is a static check of the committed file, so it is
    deterministic on any machine."""
    payload = _committed()
    comparison = payload.get("comparison")
    assert comparison, "BENCH_perf.json lacks a baseline comparison"
    assert COMMITTED_BASELINE.exists()
    assert comparison["sims_per_sec_speedup"]["litmus"] >= 2.0


def test_throughput_within_tolerance_of_committed(slow):
    reference = _committed()["benchmarks"]
    if slow:
        group, reps, warmup, floor = "litmus", 3, 1, TIGHT_FLOOR
    else:
        group, reps, warmup, floor = "mp", 2, 1, LOOSE_FLOOR
    result = run_group(group, reps=reps, warmup=warmup)
    committed = reference[group]["sims_per_sec"]
    assert result.sims_per_sec >= committed * floor, (
        f"{group}: {result.sims_per_sec:.1f} sims/s is below "
        f"{floor:.0%} of the committed {committed:.1f} sims/s")


class _Forbidden:
    """Stand-in constructor that fails the test if ever invoked."""

    def __init__(self, name):
        self._name = name

    def __call__(self, *args, **kwargs):
        raise AssertionError(
            f"{self._name} constructed during an observer-free run")


def test_unobserved_run_allocates_no_events_or_spans(monkeypatch):
    monkeypatch.setattr("repro.obs.events.Event", _Forbidden("Event"))
    monkeypatch.setattr("repro.obs.spans.Span", _Forbidden("Span"))
    for case in scenario_cases():
        run_case(case)  # would raise if any emit built an Event


def test_unsampled_run_allocates_no_telemetry(monkeypatch):
    """Telemetry's zero-cost-when-off contract: a run without
    ``sample_metrics()`` must never construct a sampler (the run loop
    pays one ``is not None`` check and nothing else)."""
    monkeypatch.setattr("repro.sim.system.MetricsSampler",
                        _Forbidden("MetricsSampler"))
    for case in scenario_cases():
        run_case(case)  # would raise if sampling state were ever built


def test_unobserved_run_constructs_no_coverage_observer(monkeypatch):
    """Coverage's zero-cost-when-off contract: without
    ``observe_coverage()`` no component gate opens and no observer is
    ever built (the probe pays one ``is not None`` check per
    transition)."""
    monkeypatch.setattr("repro.sim.system.CoverageObserver",
                        _Forbidden("CoverageObserver"))
    for case in scenario_cases():
        run_case(case)  # would raise if coverage state were ever built


def test_forbidden_coverage_observer_does_trip_when_attached(monkeypatch):
    """Positive control for the coverage trap."""
    monkeypatch.setattr("repro.sim.system.CoverageObserver",
                        _Forbidden("CoverageObserver"))
    case = scenario_cases()[0]
    system = MulticoreSystem(case.params)
    with pytest.raises(AssertionError, match="observer-free"):
        system.observe_coverage()


def test_forbidden_constructors_do_trip_when_observed(monkeypatch):
    """Positive control: the booby traps actually guard the code path."""
    monkeypatch.setattr("repro.obs.events.Event", _Forbidden("Event"))
    case = scenario_cases()[0]
    system = MulticoreSystem(case.params)
    system.observe()
    system.load_program(case.trace_lists())
    with pytest.raises(AssertionError, match="observer-free"):
        system.run()


def test_forbidden_sampler_does_trip_when_sampled(monkeypatch):
    """Positive control for the telemetry trap."""
    monkeypatch.setattr("repro.sim.system.MetricsSampler",
                        _Forbidden("MetricsSampler"))
    case = scenario_cases()[0]
    system = MulticoreSystem(case.params)
    with pytest.raises(AssertionError, match="observer-free"):
        system.sample_metrics()
