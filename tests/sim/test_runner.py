"""Runner entry points and results arithmetic."""

import pytest

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.sim.runner import compare_commit_modes, run_traces, run_workload
from repro.sim.results import SimResult
from repro.workloads import ALL_WORKLOADS
from repro.workloads.trace import AddressSpace, TraceBuilder


def tiny_traces():
    space = AddressSpace()
    x = space.new_var("x")
    t0 = TraceBuilder()
    t0.store(x, 1)
    t1 = TraceBuilder()
    t1.load(t1.reg(), x)
    return [t0.build(), t1.build()]


def test_run_traces_default_params():
    result = run_traces(tiny_traces())
    assert result.params.num_cores == 16
    assert result.committed == 2


def test_run_workload_runs_generator_output():
    workload = ALL_WORKLOADS["swaptions"](num_threads=4, scale=0.2)
    params = table6_system("SLM", num_cores=4)
    result = run_workload(workload, params)
    assert result.committed > 0


def test_compare_commit_modes_runs_each_mode():
    workload = ALL_WORKLOADS["swaptions"](num_threads=4, scale=0.2)
    base = table6_system("SLM", num_cores=4)
    results = compare_commit_modes(
        workload, base, [CommitMode.IN_ORDER, CommitMode.OOO_WB])
    assert set(results) == {CommitMode.IN_ORDER, CommitMode.OOO_WB}
    assert results[CommitMode.OOO_WB].params.writers_block


def test_result_metrics():
    result = run_traces(tiny_traces())
    assert result.counter("missing", 5) == 5
    assert result.writes_blocked_per_kilostore == 0.0
    assert result.uncacheable_per_kiloload == 0.0
    assert 0.0 <= result.stall_fraction("rob") <= 1.0
    assert "cycles=" in result.summary()


def test_speedup_over():
    fast = run_traces(tiny_traces())
    slow = run_traces(tiny_traces())
    slow_copy = SimResult(params=slow.params, cycles=slow.cycles * 2,
                          stats=slow.stats, log=slow.log)
    assert fast.speedup_over(slow_copy) > 1.0


def test_to_dict_and_save_json(tmp_path):
    import json

    result = run_traces(tiny_traces())
    snapshot = result.to_dict()
    assert snapshot["cycles"] == result.cycles
    assert snapshot["metrics"]["committed"] == result.committed
    assert snapshot["params"]["commit_mode"] == "in-order"
    assert "histograms" in snapshot and "span_summaries" in snapshot
    path = tmp_path / "result.json"
    result.save_json(path)
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(snapshot))


def test_json_round_trip():
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    result = run_traces(tiny_traces(), params, observe=True)
    back = SimResult.from_json(result.to_json())
    assert back.to_dict() == result.to_dict()
    assert back.params == result.params
    assert back.cycles == result.cycles
    assert back.histograms == result.histograms
    assert back.span_summaries == result.span_summaries


def test_observed_run_collects_spans():
    from repro.sim.runner import run_observed

    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    result, events = run_observed(tiny_traces(), params)
    assert events  # at least the protocol messages show up
    assert any(span.cat == "load" for span in result.spans)
    assert "load" in result.span_summaries
