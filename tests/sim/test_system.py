"""MulticoreSystem wiring, run loop, watchdog."""

import dataclasses

import pytest

from repro.common.errors import DeadlockError, SimulationError
from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.sim.system import MulticoreSystem
from repro.workloads.trace import AddressSpace, TraceBuilder


def test_idle_cores_finish_immediately():
    params = table6_system("SLM", num_cores=4)
    system = MulticoreSystem(params)
    system.load_program([])
    result = system.run()
    assert result.committed == 0


def test_too_many_traces_rejected():
    params = table6_system("SLM", num_cores=4)
    system = MulticoreSystem(params)
    with pytest.raises(SimulationError):
        system.load_program([[]] * 5)


def test_single_core_program_runs_alone():
    params = table6_system("SLM", num_cores=4)
    system = MulticoreSystem(params)
    t = TraceBuilder()
    r = t.reg()
    t.mov(r, 5)
    t.addi(r, r, 1)
    system.load_program([t.build()])
    result = system.run()
    assert result.committed == 2
    assert system.cores[0].reg_values[r] == 6
    assert all(core.done for core in system.cores)


def test_cycle_cap_enforced():
    params = dataclasses.replace(table6_system("SLM", num_cores=4),
                                 max_cycles=10)
    system = MulticoreSystem(params)
    space = AddressSpace()
    t = TraceBuilder()
    t.load(t.reg(), space.new_var("x"))  # ~200-cycle cold miss
    system.load_program([t.build()])
    with pytest.raises(SimulationError):
        system.run()


def test_watchdog_reports_stuck_core():
    # NOTE: a spin loop does NOT trip the watchdog — spinning cores
    # commit continuously.  A genuine no-commit stall needs the head
    # instruction to stay uncommittable: an ALU op whose latency
    # exceeds the watchdog window models a wedged core.
    params = dataclasses.replace(table6_system("SLM", num_cores=4),
                                 watchdog_cycles=5_000)
    system = MulticoreSystem(params)
    t = TraceBuilder()
    g = t.reg()
    t.gate(g, srcs=(), latency=10_000_000)
    system.load_program([t.build()])
    with pytest.raises(DeadlockError) as exc:
        system.run()
    assert "core0" in str(exc.value)


def test_result_contains_counters_and_cycles():
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    system = MulticoreSystem(params)
    space = AddressSpace()
    x = space.new_var("x")
    t = TraceBuilder()
    t.store(x, 3)
    t.load(t.reg(), x)
    system.load_program([t.build()])
    result = system.run()
    assert result.cycles > 0
    assert result.committed == 2
    assert result.stores_performed == 1
    assert result.loads_performed == 1
    assert "network.messages" in result.stats
