"""ASCII chart rendering."""

from repro.analysis.charts import (HEAT_RAMP, grouped_chart, hbar_chart,
                                   heatmap_chart)


def test_hbar_scales_to_peak():
    chart = hbar_chart([("a", 1.0), ("b", 2.0)], width=10)
    lines = chart.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10
    assert "2.000" in lines[1]


def test_hbar_reference_marker():
    chart = hbar_chart([("x", 0.5)], width=10, reference=1.0, title="T")
    assert chart.splitlines()[0] == "T"
    assert "|" in chart or "+" in chart


def test_hbar_empty():
    assert hbar_chart([], title="nothing") == "nothing"


def test_labels_aligned():
    chart = hbar_chart([("short", 1.0), ("a-longer-label", 1.0)])
    lines = chart.splitlines()
    assert lines[0].index("#") == lines[1].index("#")


def test_grouped_chart():
    chart = grouped_chart({"g1": [("a", 1.0)], "g2": [("b", 2.0)]},
                          title="all")
    assert "[g1]" in chart and "[g2]" in chart and chart.startswith("all")


def test_heatmap_maps_values_onto_ramp():
    chart = heatmap_chart([[0.0, 10.0], [5.0, 0.0]])
    lines = chart.splitlines()
    assert lines[0] == f"tile0 |{HEAT_RAMP[0]}{HEAT_RAMP[-1]}|"
    assert lines[1][-2] == HEAT_RAMP[0]


def test_heatmap_respects_explicit_peak():
    # Against peak=20 a value of 10 lands mid-ramp, not at the top.
    chart = heatmap_chart([[10.0]], peak=20.0)
    cell = chart.splitlines()[0][-2]
    assert cell not in (HEAT_RAMP[0], HEAT_RAMP[-1])


def test_heatmap_empty_returns_title():
    assert heatmap_chart([], title="T") == "T"
    assert heatmap_chart([[], []], title="T") == "T"
