"""HTML telemetry dashboard rendering."""

from repro.analysis.dashboard import (heat_color, heatmap_svg,
                                      render_dashboard, write_dashboard)
from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.obs.scenarios import scenario_traces
from repro.sim.runner import run_sampled


def _payload():
    params = table6_system("SLM", num_cores=4,
                           commit_mode=CommitMode.OOO_WB)
    return run_sampled(scenario_traces("mp"), params).telemetry


def test_heat_color_ramp_endpoints():
    assert heat_color(0.0, 10.0) == "#101c38"  # low stop
    assert heat_color(10.0, 10.0) == "#de5531"  # high stop
    assert heat_color(5.0, 0.0) == "#101c38"  # degenerate peak


def test_heatmap_svg_one_rect_per_cell():
    svg = heatmap_svg([[0, 1, 2], [3, 4, 5]])
    assert svg.count("<rect") == 6
    assert svg.count("<text") == 2  # one tile label per row
    assert heatmap_svg([]) == "<svg width='0' height='0'></svg>"


def test_dashboard_is_self_contained_html():
    doc = render_dashboard(_payload(), title="t & t")
    assert doc.startswith("<!DOCTYPE html>")
    assert "t &amp; t" in doc  # titles are escaped
    for gauge in ("rob", "lq", "mshr", "link"):
        assert f"<h2>{gauge}</h2>" in doc
    # Self-contained: no external fetches of any kind.
    assert "http" not in doc.replace("http://www.w3.org/2000/svg", "")
    assert "<script" not in doc


def test_dashboard_render_is_byte_stable():
    payload = _payload()
    assert render_dashboard(payload) == render_dashboard(payload)


def test_write_dashboard(tmp_path):
    path = tmp_path / "dash.html"
    write_dashboard(_payload(), path, title="mp")
    assert path.read_text().startswith("<!DOCTYPE html>")
