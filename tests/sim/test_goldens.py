"""Golden determinism pins over the shared perf corpus.

The committed digests in ``tests/goldens/determinism.json`` are sha256
hashes of each golden case's complete ``SimResult.to_json`` output —
the litmus battery, the directed WritersBlock scenarios, and 25 fixed
fuzz seeds.  Any change to cycle-level behavior flips at least one
digest, so a hot-path refactor that claims to be mechanical must leave
this test green without touching the goldens file.

After a *deliberate* behavior change, regenerate with::

    PYTHONPATH=src python -m pytest tests/sim/test_goldens.py --update-goldens

and review the diff of the goldens file before committing it.
"""

import json
import pathlib

import pytest

from repro.perf.corpus import golden_cases
from repro.perf.goldens import current_digests, load_digests, save_digests

GOLDEN_PATH = (pathlib.Path(__file__).resolve().parents[1]
               / "goldens" / "determinism.json")


def test_goldens_file_is_committed():
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; generate with --update-goldens")


def test_golden_case_names_match_corpus(update_goldens):
    if update_goldens:
        pytest.skip("goldens being regenerated")
    committed = load_digests(GOLDEN_PATH)
    expected = [case.name for case in golden_cases()]
    assert sorted(committed) == sorted(expected), (
        "golden corpus changed; regenerate with --update-goldens")


def test_golden_digests(update_goldens):
    digests = current_digests()
    if update_goldens:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        save_digests(GOLDEN_PATH, digests)
        pytest.skip(f"goldens rewritten -> {GOLDEN_PATH}")
    committed = load_digests(GOLDEN_PATH)
    mismatched = sorted(name for name in digests
                        if committed.get(name) != digests[name])
    assert not mismatched, (
        "simulation behavior diverged from committed goldens for: "
        + ", ".join(mismatched)
        + " — if the change is intentional, rerun with --update-goldens "
        "and review the diff of tests/goldens/determinism.json")


def test_digests_are_stable_within_process():
    """Two back-to-back runs of the same case must digest identically —
    catches accidental global-state leakage (e.g. id()-keyed output or
    shared mutable defaults) before it can masquerade as nondeterminism
    between golden regenerations."""
    case = golden_cases()[0]
    first = current_digests([case])
    second = current_digests([case])
    assert first == second


def test_goldens_file_is_canonical_json():
    committed = load_digests(GOLDEN_PATH)
    canonical = json.dumps(committed, indent=1, sort_keys=True) + "\n"
    assert GOLDEN_PATH.read_text() == canonical, (
        "goldens file not in canonical form; rewrite with --update-goldens")


def test_backend_keys_stay_out_of_baseline_payloads():
    """The backend refactor must be byte-invisible to baseline results:
    a baseline ``SimResult`` serializes without the ``backend`` /
    ``tardis_lease`` params (so all committed digests are unchanged),
    while a non-default backend records its selection."""
    from repro.common.params import table6_system
    from repro.common.types import CommitMode
    from repro.sim.runner import run_traces
    from repro.workloads.trace import AddressSpace, TraceBuilder

    space = AddressSpace()
    addr = space.new_var("x")
    t0 = TraceBuilder()
    t0.store(addr, 1)
    t1 = TraceBuilder()
    t1.load(t1.reg(), addr)
    traces = [t0.build(), t1.build()]

    base = run_traces(traces, table6_system(
        "SLM", num_cores=4, commit_mode=CommitMode.OOO_WB))
    payload = base.to_dict()
    assert "backend" not in payload["params"]
    assert "tardis_lease" not in payload["params"]["cache"]
    assert "backend" not in base.to_json()

    tardis = run_traces(traces, table6_system(
        "SLM", num_cores=4, commit_mode=CommitMode.OOO, backend="tardis"))
    payload = tardis.to_dict()
    assert payload["params"]["backend"] == "tardis"
    assert "tardis_lease" in payload["params"]["cache"]


def test_golden_corpus_holds_the_36_pinned_cases(update_goldens):
    """The backend-matrix PR pins the corpus size: 36 baseline digests,
    all of which must survive the refactor byte-identically."""
    if update_goldens:
        pytest.skip("goldens being regenerated")
    assert len(load_digests(GOLDEN_PATH)) == 36
