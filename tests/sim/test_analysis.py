"""Analysis helpers: tables, geomean, experiment drivers (smoke)."""

import pytest

from repro.analysis.experiments import (
    DEFAULT_BENCHES,
    fig8_table,
    fig8_writersblock_rates,
    fig9_overheads,
    fig9_table,
    fig10_headline,
    fig10_ooo_commit,
    fig10_stall_table,
    fig10_time_table,
    make_workload,
    table6_text,
)
from repro.analysis.tables import format_table, geometric_mean


def test_format_table_alignment():
    text = format_table(["name", "value"], [("a", 1.5), ("long-name", 22)],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert lines[2].startswith("-")
    assert "1.500" in text


def test_geometric_mean():
    assert geometric_mean([]) == 0.0
    assert abs(geometric_mean([2.0, 8.0]) - 4.0) < 1e-9
    assert abs(geometric_mean([1.0, 1.0, 1.0]) - 1.0) < 1e-9


def test_default_benches_exist():
    from repro.workloads import ALL_WORKLOADS
    for name in DEFAULT_BENCHES:
        assert name in ALL_WORKLOADS


def test_make_workload_unknown_name():
    with pytest.raises(KeyError):
        make_workload("not-a-benchmark", 4, 1.0)


def test_table6_text_contains_classes():
    text = table6_text()
    for token in ("SLM", "NHM", "HSW", "192", "72"):
        assert token in text


def test_fig_drivers_smoke():
    """Tiny end-to-end pass through all three figure drivers."""
    benches = ("swaptions",)
    rows8 = fig8_writersblock_rates(benches, core_classes=("SLM",),
                                    num_cores=4, scale=0.2)
    assert len(rows8) == 1
    assert "blocked/kstore" in fig8_table(rows8)

    rows9 = fig9_overheads(benches, num_cores=4, scale=0.2)
    assert rows9[0].time_ratio > 0
    assert "geomean" in fig9_table(rows9)

    rows10 = fig10_ooo_commit(benches, num_cores=4, scale=0.2)
    assert "in-order" in fig10_time_table(rows10)
    assert "SQ-full" in fig10_stall_table(rows10)
    headline = fig10_headline(rows10)
    assert set(headline) == {
        "avg_improvement_over_inorder_pct",
        "max_improvement_over_inorder_pct",
        "avg_improvement_over_ooo_pct",
        "max_improvement_over_ooo_pct",
    }
