"""Protocol tracer: capture, filter, sequence queries."""

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.sim.system import MulticoreSystem
from repro.sim.tracing import ProtocolTracer
from repro.workloads.trace import AddressSpace, TraceBuilder


def build_race():
    space = AddressSpace()
    x = space.new_var("x")
    y = space.new_var("y")
    t0 = TraceBuilder()
    warm = t0.reg()
    t0.load(warm, x)
    gate = t0.reg()
    t0.gate(gate, srcs=(warm,), latency=300)
    t0.load(t0.reg(), y, addr_reg=gate)
    t0.load(t0.reg(), x)
    t1 = TraceBuilder()
    t1.compute(latency=60)
    t1.store(x, 1)
    t1.store(y, 1)
    return [t0.build(), t1.build()], x


def test_tracer_captures_writersblock_handshake():
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    system = MulticoreSystem(params)
    tracer = ProtocolTracer(system)
    traces, __ = build_race()
    system.load_program(traces)
    system.run()
    # The Figure 3.B transaction order, end to end (the invalidated
    # copy is exclusive here, so the lockdown answers with Nack+Data).
    assert tracer.sequence("GetX", "FwdGetX", "NackData", "DeferredAck",
                           "Ack", "Unblock")
    assert tracer.count("NackData") >= 1


def test_type_filter():
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    system = MulticoreSystem(params)
    tracer = ProtocolTracer(system, types={"Inv"})
    traces, __ = build_race()
    system.load_program(traces)
    system.run()
    assert tracer.records
    assert all(r.msg_type == "Inv" for r in tracer.records)


def test_line_filter():
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    system = MulticoreSystem(params)
    traces, x = build_race()
    from repro.common.types import line_of

    tracer = ProtocolTracer(system, lines={line_of(x, 64)})
    system.load_program(traces)
    system.run()
    assert tracer.records
    assert all(r.line == x // 64 for r in tracer.records)


def test_live_sink_and_render():
    params = table6_system("SLM", num_cores=4)
    system = MulticoreSystem(params)
    lines = []
    tracer = ProtocolTracer(system, live=True, sink=lines.append)
    traces, __ = build_race()
    system.load_program(traces)
    system.run()
    assert lines
    assert tracer.render().splitlines()[0] == lines[0]


def test_detach_stops_capture():
    params = table6_system("SLM", num_cores=4)
    system = MulticoreSystem(params)
    tracer = ProtocolTracer(system)
    tracer.detach()
    traces, __ = build_race()
    system.load_program(traces)
    system.run()
    assert tracer.records == []


def test_detach_is_idempotent():
    params = table6_system("SLM", num_cores=4)
    system = MulticoreSystem(params)
    tracer = ProtocolTracer(system)
    tracer.detach()
    tracer.detach()  # second detach must be a no-op, not an error


def test_stacked_tracers_detach_in_any_order():
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    system = MulticoreSystem(params)
    everything = ProtocolTracer(system)
    only_inv = ProtocolTracer(system, types={"Inv"})
    # Detaching the *earlier*-attached tracer must not disturb the later
    # one (the failure mode of the old send-wrapping implementation).
    everything.detach()
    traces, __ = build_race()
    system.load_program(traces)
    system.run()
    assert everything.records == []
    assert only_inv.records
    assert all(r.msg_type == "Inv" for r in only_inv.records)


def test_context_manager_detaches_on_exit():
    params = table6_system("SLM", num_cores=4)
    system = MulticoreSystem(params)
    traces, __ = build_race()
    system.load_program(traces)
    with ProtocolTracer(system) as tracer:
        system.run()
    assert tracer.records
    assert not system.network.bus.active


def test_sequence_respects_order():
    params = table6_system("SLM", num_cores=4)
    system = MulticoreSystem(params)
    tracer = ProtocolTracer(system)
    traces, __ = build_race()
    system.load_program(traces)
    system.run()
    assert tracer.sequence("GetS", "Unblock")
    assert not tracer.sequence("Unblock", "GetS", "Unblock", "GetS",
                               "Unblock", "GetS", "Unblock", "GetS",
                               "Unblock", "GetS", "Unblock", "GetS",
                               "Unblock", "GetS", "Unblock", "GetS",
                               "Unblock", "GetS", "Unblock", "GetS")
