"""CLI commands (invoked in-process)."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "streamcluster" in out
    assert "ooo-wb" in out


def test_run_small(capsys):
    code = main(["run", "swaptions", "--cores", "4", "--scale", "0.2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "swaptions" in out
    assert "blocked writes/kstore" in out


def test_run_in_order_mode(capsys):
    code = main(["run", "swaptions", "--cores", "4", "--scale", "0.2",
                 "--mode", "in-order"])
    assert code == 0


def test_compare(capsys):
    code = main(["compare", "swaptions", "--cores", "4", "--scale", "0.2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "in-order" in out and "ooo+WB" in out


def test_litmus_single(capsys):
    code = main(["litmus", "store-buffering"])
    assert code == 0
    out = capsys.readouterr().out
    assert "store-buffering" in out and "ok" in out


def test_table2(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert out.count("->") >= 6


def test_table6(capsys):
    assert main(["table6"]) == 0
    assert "HSW" in capsys.readouterr().out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "doom"])


def test_trace_scenario(capsys, tmp_path):
    from repro.obs.export import load_chrome_trace

    out = tmp_path / "trace.json"
    events_out = tmp_path / "events.jsonl"
    code = main(["trace", "mp", "--out", str(out),
                 "--events-out", str(events_out), "--cores", "4"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "writersblock" in printed and "lockdown" in printed
    payload = load_chrome_trace(out)
    cats = {e["cat"] for e in payload["traceEvents"] if e["ph"] == "X"}
    assert {"writersblock", "lockdown", "load"} <= cats
    assert payload["otherData"]["workload"] == "mp"
    assert events_out.read_text().strip()


def test_trace_workload(capsys, tmp_path):
    out = tmp_path / "trace.json"
    code = main(["trace", "swaptions", "--out", str(out), "--cores", "4",
                 "--scale", "0.2"])
    assert code == 0
    assert out.exists()


def test_profile_scenario(capsys):
    code = main(["profile", "mp", "--cores", "4"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "component" in printed and "total wall" in printed
    assert "core" in printed


def test_blame_scenario(capsys, tmp_path):
    import json

    json_out = tmp_path / "blame.json"
    code = main(["blame", "mp", "--cores", "4", "--json", str(json_out)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "write-stall blame tree" in printed
    assert "critical path" in printed
    payload = json.loads(json_out.read_text())
    assert payload["schema"] == "repro-blame/1"
    assert payload["write_stalls"]["coverage"] >= 0.95
    assert payload["blame_tree"][0]["cause"].startswith(
        "writersblock.deferred_ack")


def test_blame_offline_from_exported_trace(capsys, tmp_path):
    """`repro blame` replays an exported JSONL trace without a live run."""
    events_out = tmp_path / "mp_events.jsonl"
    assert main(["trace", "mp", "--out", str(tmp_path / "t.json"),
                 "--events-out", str(events_out), "--cores", "4"]) == 0
    capsys.readouterr()
    assert main(["blame", str(events_out)]) == 0
    printed = capsys.readouterr().out
    assert "write-stall blame tree" in printed


def test_blame_json_to_stdout(capsys):
    import json

    assert main(["blame", "mp", "--cores", "4", "--json", "-"]) == 0
    captured = capsys.readouterr()
    payload = json.loads(captured.out)
    assert payload["schema"] == "repro-blame/1"


def test_trace_events_to_stdout(capsys):
    import json

    assert main(["trace", "mp", "--cores", "4", "--out", "/dev/null",
                 "--events-out", "-"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    header = json.loads(lines[0])
    assert header["schema"] == "repro-trace/1"
    assert header["meta"]["workload"] == "mp"
    assert all(json.loads(line) for line in lines[1:])


def test_trace_diff_modes(capsys):
    code = main(["trace-diff", "mp", "--mode", "ooo-wb",
                 "--vs-mode", "ooo", "--cores", "4"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "trace diff" in printed
    assert "stall budget" in printed


def test_blame_unknown_target_rejected():
    with pytest.raises(SystemExit):
        main(["blame", "no-such-thing"])


def test_fig8_tiny(capsys):
    code = main(["fig8", "--benches", "swaptions", "--cores", "4",
                 "--scale", "0.2"])
    assert code == 0
    assert "blocked/kstore" in capsys.readouterr().out

def test_bench_list_drivers(capsys):
    assert main(["bench", "--list-drivers"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out and "ablation_unsafe" in out


def test_bench_smoke(capsys, tmp_path):
    """A tiny engine-driven bench run writes the table and its
    machine-readable BENCH json."""
    import json

    code = main(["bench", "--only", "fig9", "--benches", "fft",
                 "--cores", "4", "--scale", "0.1",
                 "--out-dir", str(tmp_path),
                 "--cache-dir", str(tmp_path / "cache")])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig9" in out and "drivers in" in out
    payload = json.loads((tmp_path / "BENCH_fig9.json").read_text())
    assert payload["schema"] == "repro-bench/1"
    assert payload["rows"]
    assert (tmp_path / "fig9_overheads.txt").exists()
    # Second run is served from the cache.
    assert main(["bench", "--only", "fig9", "--benches", "fft",
                 "--cores", "4", "--scale", "0.1",
                 "--out-dir", str(tmp_path),
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    warm = json.loads((tmp_path / "BENCH_fig9.json").read_text())
    assert warm["cache"]["hits"] == 2
    assert warm["rows"] == payload["rows"]
