"""2D mesh geometry and X-Y routing."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.network.topology import MeshTopology


def test_coords_row_major():
    mesh = MeshTopology(16)
    assert mesh.coords(0) == (0, 0)
    assert mesh.coords(3) == (3, 0)
    assert mesh.coords(4) == (0, 1)
    assert mesh.coords(15) == (3, 3)


def test_non_square_folds_to_rectangle():
    mesh = MeshTopology(8)
    assert (mesh.width, mesh.height) == (4, 2)
    assert mesh.coords(0) == (0, 0)
    assert mesh.coords(3) == (3, 0)
    assert mesh.coords(4) == (0, 1)
    assert mesh.coords(7) == (3, 1)
    assert mesh.hops(0, 7) == 4


def test_non_positive_tile_count_rejected():
    with pytest.raises(ConfigError):
        MeshTopology(0)


def test_out_of_range_tile_rejected():
    mesh = MeshTopology(4)
    with pytest.raises(ConfigError):
        mesh.coords(4)


def test_hops_manhattan():
    mesh = MeshTopology(16)
    assert mesh.hops(0, 0) == 0
    assert mesh.hops(0, 3) == 3
    assert mesh.hops(0, 15) == 6
    assert mesh.hops(5, 6) == 1


def test_route_is_x_then_y():
    mesh = MeshTopology(16)
    route = mesh.route(0, 15)
    # X first: 0->1->2->3, then Y: 3->7->11->15.
    assert route == [(0, 1), (1, 2), (2, 3), (3, 7), (7, 11), (11, 15)]


def test_route_empty_for_self():
    mesh = MeshTopology(16)
    assert mesh.route(7, 7) == []


@given(st.integers(0, 15), st.integers(0, 15))
def test_route_length_equals_hops_and_links_adjacent(src, dst):
    mesh = MeshTopology(16)
    route = mesh.route(src, dst)
    assert len(route) == mesh.hops(src, dst)
    at = src
    for a, b in route:
        assert a == at
        assert mesh.hops(a, b) == 1
        at = b
    if route:
        assert route[-1][1] == dst


@given(st.integers(0, 15), st.integers(0, 15))
def test_same_pair_routes_identically(src, dst):
    # Determinism: X-Y routing gives one fixed path per pair.
    mesh = MeshTopology(16)
    assert mesh.route(src, dst) == mesh.route(src, dst)
