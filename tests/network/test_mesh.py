"""Message-level mesh: delivery, latency, traffic accounting."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.common.event_queue import EventQueue
from repro.common.params import NetworkParams
from repro.common.stats import StatsRegistry
from repro.common.types import LineAddr, MsgType
from repro.network.mesh import MeshNetwork
from repro.network.message import Message


def make_mesh(num_tiles=16, contention=True):
    events = EventQueue()
    stats = StatsRegistry()
    mesh = MeshNetwork(num_tiles, NetworkParams(model_contention=contention),
                       events, stats)
    return mesh, events, stats


def run_until_empty(events):
    while not events.empty:
        events.run_due()
        if not events.empty:
            events.advance_to_next_event()


def test_delivery_and_latency():
    mesh, events, stats = make_mesh()
    received = []
    mesh.register(15, "cache", received.append)
    msg = Message(MsgType.GETS, 0, 15, "cache", LineAddr(1))
    arrival = mesh.send(msg)
    # 6 hops x 6 cycles/switch = 36 (1-flit control message, no queueing).
    assert arrival == 36
    run_until_empty(events)
    assert received == [msg]


def test_local_delivery_is_one_cycle():
    mesh, events, __ = make_mesh()
    got = []
    mesh.register(3, "llc", got.append)
    arrival = mesh.send(Message(MsgType.ACK, 3, 3, "llc", LineAddr(0)))
    assert arrival == 1
    run_until_empty(events)
    assert len(got) == 1


def test_data_messages_count_five_flits():
    mesh, events, stats = make_mesh()
    mesh.register(1, "cache", lambda m: None)
    mesh.send(Message(MsgType.DATA, 0, 1, "cache", LineAddr(0)))
    assert stats.value("network.flits") == 5
    assert stats.value("network.flit_hops") == 5  # 1 hop x 5 flits
    mesh.send(Message(MsgType.ACK, 0, 1, "cache", LineAddr(0)))
    assert stats.value("network.flits") == 6


def test_contention_queues_messages_on_shared_link():
    mesh, events, stats = make_mesh()
    mesh.register(1, "cache", lambda m: None)
    first = mesh.send(Message(MsgType.DATA, 0, 1, "cache", LineAddr(0)))
    second = mesh.send(Message(MsgType.DATA, 0, 1, "cache", LineAddr(1)))
    assert second > first  # serialized behind the first message's flits
    assert stats.value("network.link_queue_cycles") > 0


def test_contention_free_mode():
    mesh, events, stats = make_mesh(contention=False)
    mesh.register(1, "cache", lambda m: None)
    first = mesh.send(Message(MsgType.DATA, 0, 1, "cache", LineAddr(0)))
    second = mesh.send(Message(MsgType.DATA, 0, 1, "cache", LineAddr(1)))
    assert first == second


def test_unknown_endpoint_raises():
    mesh, __, __ = make_mesh()
    with pytest.raises(SimulationError):
        mesh.send(Message(MsgType.GETS, 0, 2, "cache", LineAddr(0)))


def test_duplicate_registration_rejected():
    mesh, __, __ = make_mesh()
    mesh.register(0, "cache", lambda m: None)
    with pytest.raises(ConfigError):
        mesh.register(0, "cache", lambda m: None)


def test_same_pair_messages_stay_ordered():
    """X-Y routing keeps same-src-dst messages in order even with
    contention; different pairs may reorder (unordered network)."""
    mesh, events, __ = make_mesh()
    log = []
    mesh.register(5, "cache", lambda m: log.append(m.msg_id))
    ids = []
    for __i in range(4):
        msg = Message(MsgType.DATA, 0, 5, "cache", LineAddr(__i))
        ids.append(msg.msg_id)
        mesh.send(msg)
    run_until_empty(events)
    assert log == ids


def test_different_pairs_can_reorder():
    """A short-route message sent after a long-route one arrives first:
    the network is unordered across pairs (the property WritersBlock
    must cope with)."""
    mesh, events, __ = make_mesh()
    order = []
    mesh.register(5, "cache", lambda m: order.append(m.src))
    mesh.send(Message(MsgType.DATA, 0, 5, "cache", LineAddr(0)))  # 2 hops
    mesh.send(Message(MsgType.ACK, 4, 5, "cache", LineAddr(0)))  # 1 hop
    run_until_empty(events)
    assert order == [4, 0]
