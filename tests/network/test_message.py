"""Message construction and flit sizing."""

from repro.common.types import LineAddr, MsgType
from repro.network.message import Message


def test_flits_follow_type():
    data = Message(MsgType.DATA, 0, 1, "cache", LineAddr(0))
    ctrl = Message(MsgType.ACK, 0, 1, "cache", LineAddr(0))
    assert data.flits == 5
    assert ctrl.flits == 1


def test_ids_unique_and_payload_accessors():
    a = Message(MsgType.GETS, 0, 1, "llc", LineAddr(0))
    b = Message(MsgType.GETS, 0, 1, "llc", LineAddr(0))
    assert a.msg_id != b.msg_id
    fwd = Message(MsgType.FWD_GETX, 0, 1, "cache", LineAddr(0),
                  {"requester": 3})
    assert fwd.requester == 3
    assert a.requester is None


def test_repr_mentions_route_and_type():
    msg = Message(MsgType.INV, 2, 7, "cache", LineAddr(0x40))
    text = repr(msg)
    assert "Inv" in text and "2->7" in text
