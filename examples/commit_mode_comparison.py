#!/usr/bin/env python3
"""Compare commit policies on the synthetic benchmark suite.

Reproduces the Figure 10 experiment on a configurable workload subset:
normalized execution time and commit-stall breakdown for in-order
commit, Bell-Lipasti safe OoO commit, and OoO commit + WritersBlock.

Run:  python examples/commit_mode_comparison.py [workload ...]
      (default: bodytrack freqmine streamcluster)
"""

import sys

from repro.analysis.experiments import (
    fig10_headline,
    fig10_ooo_commit,
    fig10_stall_table,
    fig10_time_table,
)


def main():
    benches = sys.argv[1:] or ["bodytrack", "freqmine", "streamcluster"]
    print(f"Running {benches} under 3 commit modes "
          f"(16 cores, SLM class; this takes a minute or two)...\n")
    rows = fig10_ooo_commit(benches, scale=1.0)
    print(fig10_time_table(rows))
    print()
    print(fig10_stall_table(rows))
    print()
    headline = fig10_headline(rows)
    print(f"OoO+WB improvement over in-order commit: "
          f"avg {headline['avg_improvement_over_inorder_pct']:.1f}%, "
          f"max {headline['max_improvement_over_inorder_pct']:.1f}%")
    print(f"OoO+WB improvement over safe OoO commit: "
          f"avg {headline['avg_improvement_over_ooo_pct']:.1f}%, "
          f"max {headline['max_improvement_over_ooo_pct']:.1f}%")


if __name__ == "__main__":
    main()
