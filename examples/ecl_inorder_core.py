#!/usr/bin/env python3
"""Early Commit of Loads on a squash-incapable in-order core (paper §1).

A stall-on-use in-order core (like the DEC Alpha 21164 EV5) has no
checkpoint/rollback machinery.  Under TSO it classically cannot let a
younger load bind before an older one — it must "wait for it", which
serializes every cache miss.  WritersBlock makes the reordering safe to
bind irrevocably, so the same core gets full memory-level parallelism.

Run:  python examples/ecl_inorder_core.py
"""

import dataclasses

from repro import table6_system
from repro.sim.system import MulticoreSystem
from repro.workloads import AddressSpace, TraceBuilder


def pointer_free_misses(num_threads=4, misses=12):
    """Each thread issues independent cold misses + light compute."""
    space = AddressSpace()
    arrays = [space.new_array(f"t{t}", misses) for t in range(num_threads)]
    shared = space.new_array("shared", 16)
    traces = []
    for tid in range(num_threads):
        t = TraceBuilder()
        for i, addr in enumerate(arrays[tid]):
            t.load(t.reg(), addr)
            t.load(t.reg(), shared[(tid + i) % len(shared)])
            t.compute(latency=2)
            if i % 4 == 0:
                t.store(shared[(tid * 3 + i) % len(shared)], i)
        traces.append(t.build())
    return traces


def main():
    print(__doc__)
    traces = pointer_free_misses()
    for core_type, wb in (("inorder", False), ("inorder-ecl", True)):
        params = table6_system("SLM", num_cores=4)
        params = dataclasses.replace(params, core_type=core_type,
                                     writers_block=wb)
        system = MulticoreSystem(params)
        system.load_program(traces)
        result = system.run()
        label = ("blocking in-order ('wait for it')" if core_type == "inorder"
                 else "ECL + WritersBlock")
        print(f"{label:38s} {result.cycles:6d} cycles  "
              f"(order stalls: {result.counter('core.inorder_order_stalls')}, "
              f"blocked writes: {result.writes_blocked})")
    print("\nSame core, same program, no squash hardware on either —")
    print("the coherence layer alone makes the reordering legal.")


if __name__ == "__main__":
    main()
