#!/usr/bin/env python3
"""Watch the WritersBlock protocol work, message by message.

Instruments the mesh to print every coherence message for the paper's
Figure 3.B scenario: a write whose invalidation hits a lockdown.  You
can see the Inv, the Nack entering WritersBlock, a tear-off read being
served mid-block, the deferred Ack redirecting through the directory,
and the writer finally unblocking.

Run:  python examples/protocol_trace.py
"""

from repro import CommitMode, table6_system
from repro.sim.system import MulticoreSystem
from repro.workloads import AddressSpace, TraceBuilder

INTERESTING = {"GetX", "Inv", "Nack", "NackData", "Ack", "DeferredAck",
               "Unblock", "DataU", "BlockedHint", "Perm"}


def main():
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    system = MulticoreSystem(params)

    space = AddressSpace()
    x = space.new_var("x")
    y = space.new_var("y")

    reader = TraceBuilder()
    warm = reader.reg()
    reader.load(warm, x)
    gate = reader.reg()
    reader.gate(gate, srcs=(warm,), latency=300)
    reader.load(reader.reg(), y, addr_reg=gate)  # SoS
    reader.load(reader.reg(), x)  # M-speculative -> lockdown

    writer = TraceBuilder()
    writer.compute(latency=60)
    writer.store(x, 1)
    writer.store(y, 1)

    bystander = TraceBuilder()
    bystander.compute(latency=500)
    bystander.load(bystander.reg(), x)  # arrives during WritersBlock

    system.load_program([reader.build(), writer.build(), bystander.build()])

    original_send = system.network.send

    def traced_send(msg):
        arrival = original_send(msg)
        if msg.msg_type.value in INTERESTING:
            print(f"cycle {system.events.now:5d}  {msg.msg_type.value:12s} "
                  f"tile{msg.src} -> tile{msg.dst}:{msg.dst_port:5s}  "
                  f"{msg.line!r}  (arrives {arrival})")
        return arrival

    system.network.send = traced_send
    print(__doc__)
    print(f"x lives on line {x // 64:#x}, y on line {y // 64:#x}\n")
    result = system.run()
    print(f"\ncompleted in {result.cycles} cycles; "
          f"WritersBlock entries: {result.counter('dir.writersblock_entered')}, "
          f"tear-off reads: {result.uncacheable_reads}, "
          f"consistency squashes: {result.consistency_squashes}")


if __name__ == "__main__":
    main()
