#!/usr/bin/env python3
"""Paper Figure 5: deadlock scenarios and how safe passage defuses them.

Builds the MSHR-deadlock shape (§3.5.2): a core's SoS load resolves into
the same cache line as its own write, which is blocked in WritersBlock
by the core's own lockdown being seen by another writer.  With the
SoS-bypass rule the program completes; with the rule ablated, the
watchdog proves the system genuinely deadlocks.

Also shrinks the LLC to force directory evictions and shows the
eviction-buffer safe passage (§3.5.1) keeping everything live.

Run:  python examples/deadlock_scenarios.py
"""

import dataclasses

from repro import CommitMode, DeadlockError, table6_system
from repro.common.params import CacheParams
from repro.sim.system import MulticoreSystem
from repro.workloads import AddressSpace, TraceBuilder


def mshr_deadlock_program():
    space = AddressSpace()
    a1 = space.new_var("a")
    a2, a3 = a1 + 8, a1 + 16
    t0 = TraceBuilder()
    warm = t0.reg()
    t0.load(warm, a1)
    gate = t0.reg()
    t0.gate(gate, srcs=(warm,), latency=250)
    t0.load(t0.reg(), a2, addr_reg=gate)  # SoS load, resolves to line a
    t0.load(t0.reg(), a1)  # M-speculative: lockdown on line a
    slow_val = t0.reg()
    t0.gate(slow_val, srcs=(warm,), latency=150, imm=7)
    t0.store(a3, value_reg=slow_val)  # prefetched write, will block
    t1 = TraceBuilder()
    t1.compute(latency=60)
    t1.store(a1, 1)  # hits the lockdown -> WritersBlock
    return [t0.build(), t1.build()]


def run(disable_bypass, watchdog=30_000):
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    params = dataclasses.replace(params, disable_sos_bypass=disable_bypass,
                                 watchdog_cycles=watchdog)
    system = MulticoreSystem(params)
    system.load_program(mshr_deadlock_program())
    return system.run()


def main():
    print("=== Figure 5.B: MSHR deadlock ===")
    result = run(disable_bypass=False)
    print(f"with SoS bypass   : completed in {result.cycles} cycles "
          f"(uncacheable reads: {result.uncacheable_reads}, "
          f"blocked writes: {result.writes_blocked})")
    try:
        run(disable_bypass=True)
        print("without SoS bypass: unexpectedly completed?!")
    except DeadlockError as exc:
        first_line = str(exc).splitlines()[1]
        print(f"without SoS bypass: DEADLOCK detected by watchdog")
        print(f"  stuck state: {first_line}")

    print("\n=== Figure 5.A flavour: constant directory evictions ===")
    cache = CacheParams(llc_sets_per_bank=1, llc_ways=2,
                        dir_eviction_buffer=2)
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    params = dataclasses.replace(params, cache=cache,
                                 watchdog_cycles=100_000)
    space = AddressSpace()
    data = space.new_array("data", 24)
    traces = []
    for tid in range(4):
        t = TraceBuilder()
        for i in range(60):
            addr = data[(tid * 7 + i * 3) % len(data)]
            if i % 3 == 0:
                t.store(addr, i)
            else:
                t.load(t.reg(), addr)
            t.compute(latency=2)
        traces.append(t.build())
    system = MulticoreSystem(params)
    system.load_program(traces)
    result = system.run()
    print(f"tiny LLC (1 set x 2 ways/bank): completed in {result.cycles} "
          f"cycles with {result.counter('dir.llc_evictions')} directory "
          f"evictions and {result.counter('dir.uncacheable_due_to_eviction')} "
          f"uncacheable fallbacks — no deadlock.")


if __name__ == "__main__":
    main()
