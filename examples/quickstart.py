#!/usr/bin/env python3
"""Quickstart: run the paper's Table 1 example on the simulator.

Core 0 executes ``ld ra,y ; ld rb,x`` with the older load's address
unresolved for a while (so the younger load reorders past it); core 1
executes ``st x,1 ; st y,1``.  TSO forbids {ra==1, rb==0}.

We run it under three commit policies and show how each one deals with
the reordering:

* in-order / safe OoO commit: the invalidation squashes the
  M-speculative load (classic TSO enforcement);
* OoO commit + WritersBlock: the invalidation is Nacked and the *store*
  waits — no squash, and the reordered load commits out of order.

Run:  python examples/quickstart.py
"""

from repro import CommitMode, check_tso, table6_system
from repro.sim.system import MulticoreSystem
from repro.workloads import AddressSpace, TraceBuilder


def build_program():
    space = AddressSpace()
    x = space.new_var("x")
    y = space.new_var("y")

    reader = TraceBuilder()
    warm = reader.reg()
    reader.load(warm, x)  # cache x so the younger load can hit
    gate = reader.reg()
    reader.gate(gate, srcs=(warm,), latency=300)  # slow address compute
    ra = reader.reg()
    reader.load(ra, y, addr_reg=gate)  # older load: unresolved address
    rb = reader.reg()
    reader.load(rb, x)  # younger load: hits the cached (old) copy

    writer = TraceBuilder()
    writer.compute(latency=60)
    writer.store(x, 1)
    writer.store(y, 1)
    return [reader.build(), writer.build()], (ra, rb)


def main():
    print(__doc__)
    traces, (ra, rb) = build_program()
    for mode in (CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB):
        params = table6_system("SLM", num_cores=4, commit_mode=mode)
        system = MulticoreSystem(params)
        system.load_program(traces)
        result = system.run()
        check_tso(result.log)  # raises TSOViolationError if broken
        regs = system.cores[0].reg_values
        print(f"{mode.value:10s}  ra={regs.get(ra)} rb={regs.get(rb)}  "
              f"cycles={result.cycles:5d}  "
              f"squashes={result.consistency_squashes}  "
              f"blocked_writes={result.writes_blocked}  -> TSO OK")
    print()
    print("Note how OoO+WB reports zero squashes: the coherence layer")
    print("delayed the store instead (blocked_writes > 0), and both")
    print("loads read the old values — interleaving (1) of Table 2.")


if __name__ == "__main__":
    main()
