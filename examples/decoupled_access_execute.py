#!/usr/bin/env python3
"""DeSC-style decoupled access-execute on ECL cores (paper §1).

The paper's second motivation: decoupled access-execute accelerators
(DeSC, Ham et al. MICRO'15) need *non-speculative decoupling* via early
commit of loads — the access slice runs far ahead, binding loads
irrevocably and streaming values to the execute slice through a memory
queue.  Squash-based TSO enforcement would tear the decoupling apart;
WritersBlock makes the early binding legal.

This example builds a two-slice pipeline on in-order ECL cores:

* the ACCESS core streams a data array, writing each loaded value into
  a single-producer queue in shared memory (data + per-slot flag);
* the EXECUTE core spins on each flag, consumes the value, and
  accumulates;
* a third core concurrently rewrites parts of the data array, so the
  access slice's early-bound loads genuinely race with remote writes.

Run:  python examples/decoupled_access_execute.py
"""

import dataclasses

from repro import table6_system
from repro.consistency.tso_checker import check_tso
from repro.sim.system import MulticoreSystem
from repro.workloads import AddressSpace, TraceBuilder
from repro.workloads.synchronization import spin_until_set

ITEMS = 24


def build_program():
    space = AddressSpace()
    data = space.new_array("data", ITEMS)
    slots = space.new_array("slot", ITEMS)
    flags = space.new_array("flags", ITEMS, stride=16)

    access = TraceBuilder()
    for i in range(ITEMS):
        value = access.reg()
        access.load(value, data[i])  # early-bound, runs far ahead
        access.store(slots[i], value_reg=value)
        access.store(flags[i], 1)

    execute = TraceBuilder()
    acc = execute.reg()
    execute.mov(acc, 0)
    for i in range(ITEMS):
        spin_until_set(execute, flags[i], poll_delay=4)
        value = execute.reg()
        execute.load(value, slots[i])
        nxt = execute.reg()
        execute.compute(nxt, srcs=(value,), latency=6)  # "execute" work
        execute.addi(acc, acc, 0)

    mutator = TraceBuilder()
    for i in range(0, ITEMS, 3):
        mutator.compute(latency=15)
        mutator.store(data[i], 1000 + i)  # races with the access slice

    return [access.build(), execute.build(), mutator.build()], space


def main():
    print(__doc__)
    traces, space = build_program()
    params = table6_system("SLM", num_cores=4)
    params = dataclasses.replace(params, core_type="inorder-ecl",
                                 writers_block=True)
    system = MulticoreSystem(params)
    system.load_program(traces)
    result = system.run()
    check_tso(result.log)
    slot_set = set(space.vars[f"slot[{i}]"] for i in range(ITEMS))
    consumed = [e for e in result.log.events
                if e.core == 1 and e.kind == "ld" and e.addr in slot_set]
    print(f"pipeline completed in {result.cycles} cycles, TSO-clean")
    print(f"  access slice bound {ITEMS} loads early "
          f"(blocked writes seen: {result.writes_blocked}, "
          f"tear-off reads: {result.uncacheable_reads})")
    print(f"  execute slice consumed {len(consumed)} queue slots")
    print("  no squash hardware anywhere — the decoupling is "
          "non-speculative, as DeSC requires.")


if __name__ == "__main__":
    main()
