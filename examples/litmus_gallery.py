#!/usr/bin/env python3
"""Litmus gallery: the paper's Tables 1-3 plus classic TSO shapes.

Runs every litmus test in the library under all four commit modes
(including the deliberately broken OOO_UNSAFE ablation) over a grid of
timing offsets, and prints which outcomes appeared and whether the
axiomatic TSO checker accepted the execution.

Run:  python examples/litmus_gallery.py
"""

from repro import CommitMode, table6_system
from repro.consistency.litmus import run_litmus, standard_suite

MODES = (CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB,
         CommitMode.OOO_UNSAFE)
DELAYS = ((0, 0), (0, 40), (40, 0), (20, 60))


def main():
    for test in standard_suite():
        cores = 16 if len(test.threads) > 4 else 4
        print(f"\n=== {test.name} ===")
        print(f"    {test.description}")
        forbidden = test.forbidden or ["(none: all outcomes legal)"]
        print(f"    forbidden: {forbidden}")
        for mode in MODES:
            params = table6_system("SLM", num_cores=cores, commit_mode=mode)
            outcomes = set()
            violations = 0
            hits = 0
            for delays in DELAYS:
                result = run_litmus(test, params, extra_delays=delays)
                outcomes.add(tuple(sorted(result.registers.items())))
                violations += result.checker_violation is not None
                hits += result.forbidden_hit
            status = "TSO OK" if violations == 0 else f"{violations} VIOLATIONS"
            flag = f" forbidden x{hits}!" if hits else ""
            print(f"    {mode.value:10s} {len(outcomes)} distinct outcomes, "
                  f"{status}{flag}")


if __name__ == "__main__":
    main()
